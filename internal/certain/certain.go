// Package certain computes the exact certainty notions of Section 3 of the
// paper for relational algebra queries under the closed-world semantics:
//
//   - cert⊥(Q, D), certain answers with nulls (Definition 3.9):
//     { t̄ | v(t̄) ∈ Q(v(D)) for every valuation v };
//   - cert∩(Q, D), intersection-based certain answers (Definition 3.7):
//     ⋂_{D' ∈ ⟦D⟧} Q(D');
//   - Boolean certainty and possibility;
//   - the bag-semantics multiplicity bounds □Q and ◇Q of Section 4.2
//     ((6a) and (6b)).
//
// All of these are computed by enumerating a finite valuation space. By
// genericity (Section 2) a query's behaviour depends only on the
// isomorphism type of the database over the constants mentioned in the
// query, so it suffices to range valuations over Const(D) ∪ consts(Q) ∪ F
// where F holds |Null(D)| + 1 fresh constants: any valuation is isomorphic,
// over the relevant constants, to one in this space, and the extra fresh
// constant refutes spurious fresh tuples in intersections. The enumeration is
// exponential in |Null(D)| — certain answers are coNP-hard (Theorem 3.12),
// so an exact oracle cannot do better — and is therefore guarded by
// Options.MaxWorlds. The package is the ground-truth oracle against which
// the tractable approximations of Section 4 are tested.
//
// Each valuation is evaluated independently of every other, so the oracle
// shards the valuation index space across an engine worker pool
// (Options.Workers) and merges the per-shard results in shard order; every
// merge below is arranged so that the parallel result is identical to the
// serial one.
package certain

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"incdb/internal/algebra"
	"incdb/internal/engine"
	"incdb/internal/plan"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// worldEval compiles and prepares q once per oracle invocation: the
// returned evaluator is shared by all worker shards and re-executes the
// same physical plan per world, with every null-free subplan (results and
// hash-join build tables) frozen across the whole valuation space. The
// plan's batch buffers recycle per worker shard through its sync.Pool —
// each shard executing worlds back to back keeps reusing one warm buffer
// set, so the per-world cost is the rows, not the allocations. With a
// prepared-plan cache in the options the freeze additionally survives
// *across* oracle invocations, guarded by the base relations' mutation
// versions — the REPL/server reuse path.
func (o Options) worldEval(db *relation.Database, q algebra.Expr, bag bool) func(*relation.Database) *relation.Relation {
	prep := o.Prep.Get(db, q, algebra.ModeNaive, bag)
	if o.Trace == nil {
		return prep.Exec
	}
	tr := o.Trace
	return func(w *relation.Database) *relation.Relation {
		return prep.ExecTraced(w, tr)
	}
}

// Options bounds the exhaustive enumeration and configures parallelism.
type Options struct {
	// MaxWorlds caps the number of valuations enumerated; Compute returns
	// an error beyond it. Zero means DefaultMaxWorlds.
	MaxWorlds int
	// FreshCount overrides the number of fresh constants added to the
	// valuation range. Zero means |Null(D)| + 1: n fresh constants make
	// the enumeration complete for cert⊥ membership of tuples over dom(D)
	// (any valuation uses at most n distinct values outside the mentioned
	// constants), and the extra one guarantees that every tuple mentioning
	// a fresh constant is refuted in cert∩ by a valuation avoiding it.
	// Smaller values trade exactness for speed.
	FreshCount int
	// Workers is the number of goroutines sharding the valuation
	// enumeration: 0 means one per CPU, 1 forces the serial reference
	// path. Results are independent of the setting.
	Workers int
	// Trace, when non-nil, accumulates execution statistics across the
	// oracle's whole valuation loop: Execs counts worlds enumerated (plus
	// the candidate-producing base run), FrozenReuse counts frozen-subplan
	// serves. Shared by all worker shards; adds two atomic increments per
	// world. Results are identical with or without it.
	Trace *plan.Trace
	// Prep, when non-nil, supplies version-guarded prepared plans that
	// survive across oracle invocations: repeated queries against an
	// unchanged database skip re-materializing every frozen null-free
	// subplan. Results are identical with or without it.
	Prep *plan.PrepCache
}

// DefaultMaxWorlds bounds enumeration to about a million possible worlds.
const DefaultMaxWorlds = 1 << 20

func (o Options) maxWorlds() int {
	if o.MaxWorlds <= 0 {
		return DefaultMaxWorlds
	}
	return o.MaxWorlds
}

func (o Options) engine() engine.Options { return engine.Options{Workers: o.Workers} }

// pollInterval is how many worlds a worker evaluates between cancellation
// checks.
const pollInterval = 64

// Space is the finite valuation space used by the oracle: the null
// identifiers of D and the candidate range.
type Space struct {
	ids   []uint64
	rng   []value.Value
	count int
}

// NewSpace builds the valuation space for db and query constants qconsts,
// quantifying over every null of the database.
func NewSpace(db *relation.Database, qconsts []value.Value, opts Options) (*Space, error) {
	return newSpace(db, db.NullIDs(), qconsts, opts)
}

// NewSpaceForQuery builds the valuation space restricted to the nulls the
// query can observe: those occurring in *columns the query reads*
// (algebra.UsedColumns). The set-semantics query result Q(v(D)) does not
// depend on the bindings of other nulls, so universal and existential
// conditions over valuations are unchanged — while the enumeration shrinks
// from |rng|^|Null(D)| to |rng|^|relevant|.
func NewSpaceForQuery(db *relation.Database, q algebra.Expr, opts Options) (*Space, error) {
	ids := relevantNulls(db, q)
	if ids == nil {
		return NewSpace(db, algebra.ConstsOf(q), opts)
	}
	return newSpace(db, ids, algebra.ConstsOf(q), opts)
}

// relevantNulls returns the sorted null ids in query-read columns, or nil
// when the query reads the whole active domain (Dom) and every null is
// relevant.
func relevantNulls(db *relation.Database, q algebra.Expr) []uint64 {
	if _, usesDom := algebra.RelationsOf(q); usesDom {
		return nil
	}
	used := algebra.UsedColumns(q, db)
	seen := map[uint64]bool{}
	ids := []uint64{}
	for name, mask := range used {
		rel := db.Relation(name)
		if rel == nil {
			continue
		}
		for _, t := range rel.Tuples() {
			for col, v := range t {
				if mask[col] && v.IsNull() && !seen[v.NullID()] {
					seen[v.NullID()] = true
					ids = append(ids, v.NullID())
				}
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// spaceForTuple builds the space for set-semantics tuple-level checks: the
// membership condition v(t̄) ∈ Q(v(D)) depends on the query-visible nulls
// plus any nulls and constants of t̄ itself.
func spaceForTuple(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (*Space, error) {
	ids := relevantNulls(db, q)
	if ids == nil {
		ids = db.NullIDs()
	}
	return tupleSpace(db, q, t, ids, opts)
}

// spaceForTupleBag is the bag-semantics variant: column-level pruning is
// unsound under bags (unused columns can collapse tuples and change
// multiplicities), so only whole relations the query never reads are
// pruned.
func spaceForTupleBag(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (*Space, error) {
	names, usesDom := algebra.RelationsOf(q)
	var ids []uint64
	if usesDom {
		ids = db.NullIDs()
	} else {
		seen := map[uint64]bool{}
		for _, name := range names {
			rel := db.Relation(name)
			if rel == nil {
				continue
			}
			for _, tp := range rel.Tuples() {
				for _, v := range tp {
					if v.IsNull() && !seen[v.NullID()] {
						seen[v.NullID()] = true
						ids = append(ids, v.NullID())
					}
				}
			}
		}
	}
	return tupleSpace(db, q, t, ids, opts)
}

func tupleSpace(db *relation.Database, q algebra.Expr, t value.Tuple, ids []uint64, opts Options) (*Space, error) {
	seen := map[uint64]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	ids = append([]uint64(nil), ids...)
	for id := range t.Nulls() {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	consts := algebra.ConstsOf(q)
	for _, v := range t {
		if v.IsConst() {
			consts = append(consts, v)
		}
	}
	return newSpace(db, ids, consts, opts)
}

func newSpace(db *relation.Database, ids []uint64, qconsts []value.Value, opts Options) (*Space, error) {
	if len(ids) == 0 {
		// No nulls to bind: the space is the single empty valuation, and
		// the candidate range is irrelevant — skip collecting Const(D),
		// which walks the whole database. This is the hot case for
		// complete databases and for queries whose read columns are
		// null-free (server workloads repeat those per session).
		return &Space{count: 1}, nil
	}
	rng := append([]value.Value(nil), db.Consts()...)
	have := map[value.Value]bool{}
	for _, c := range rng {
		have[c] = true
	}
	for _, c := range qconsts {
		if !have[c] {
			have[c] = true
			rng = append(rng, c)
		}
	}
	freshCount := opts.FreshCount
	if freshCount <= 0 {
		freshCount = len(ids) + 1
	}
	for i := 0; i < freshCount; i++ {
		// Fresh constants must avoid everything present; the prefix makes
		// collisions with user data implausible and the loop rules them out.
		base := "⁑fresh" + strconv.Itoa(i)
		c := value.Const(base)
		for n := 0; have[c]; n++ {
			c = value.Const(base + "_" + strconv.Itoa(n))
		}
		have[c] = true
		rng = append(rng, c)
	}
	count := 1
	for range ids {
		count *= len(rng)
		if count > opts.maxWorlds() || count < 0 {
			return nil, fmt.Errorf("certain: valuation space %d^%d exceeds MaxWorlds %d",
				len(rng), len(ids), opts.maxWorlds())
		}
	}
	if len(ids) == 0 {
		count = 1
	}
	return &Space{ids: ids, rng: rng, count: count}, nil
}

// Size returns the number of valuations in the space.
func (s *Space) Size() int { return s.count }

// Each enumerates every valuation in the space. Stop early by returning
// false from f. The Valuation passed to f is reused between calls; f must
// not retain it.
func (s *Space) Each(f func(v value.Valuation) bool) {
	s.EachRange(0, s.count, f)
}

// EachRange enumerates the valuations whose index lies in [lo, hi), in the
// same order Each visits them (the mixed-radix odometer with ids[0] most
// significant). Disjoint ranges can be enumerated concurrently: each call
// owns its iteration state and only reads the space.
func (s *Space) EachRange(lo, hi int, f func(v value.Valuation) bool) {
	value.EnumValuations(s.ids, s.rng, lo, hi, f)
}

// shards splits the space's index range for the pool, or returns nil when
// the serial path should be used (one worker, or a space too small to pay
// for fan-out).
func (s *Space) shards(eng engine.Options) [][2]int {
	w := eng.WorkerCount()
	if w <= 1 || s.count < engine.MinParallel {
		return nil
	}
	// Overshard for load balance: world costs vary with the valuation.
	return engine.Split(s.count, w*4)
}

// WithNulls computes cert⊥(Q, D) exactly. Candidates are drawn from the
// naive evaluation: instantiating Definition 3.9 with an injective
// valuation onto fresh constants shows cert⊥(Q, D) ⊆ Qnaïve(D), so nothing
// outside the naive answer can be certain.
func WithNulls(db *relation.Database, q algebra.Expr, opts Options) (*relation.Relation, error) {
	space, err := NewSpaceForQuery(db, q, opts)
	if err != nil {
		return nil, err
	}
	// The naive evaluation is the prepared plan run on the base itself (the
	// base is trivially one of its own worlds), so candidate collection
	// shares the frozen null-free subplans with the world loop below.
	eval := opts.worldEval(db, q, false)
	candidates := eval(db).Tuples()
	alive, err := survivors(db, space, candidates, opts, eval)
	if err != nil {
		return nil, err
	}
	arity := algebra.Arity(q, db)
	out := relation.NewArity("cert⊥", arity)
	for i, t := range candidates {
		if alive[i] {
			out.Add(t)
		}
	}
	return out, nil
}

// survivors reports, per candidate, whether it is an answer in every world
// of the space. The parallel path shards the index range; each worker
// eliminates candidates independently and the shard results are AND-merged,
// which is order-insensitive and hence identical to the serial elimination.
func survivors(db *relation.Database, space *Space, candidates []value.Tuple, opts Options,
	eval func(*relation.Database) *relation.Relation) ([]bool, error) {
	alive := make([]bool, len(candidates))
	for i := range alive {
		alive[i] = true
	}
	if len(candidates) == 0 {
		return alive, nil
	}
	eliminate := func(ctx context.Context, lo, hi int, local []bool, allDead *engine.Flag) {
		remaining := len(candidates)
		for i := range local {
			if !local[i] {
				remaining--
			}
		}
		// One probe buffer per worker: candidate instantiation reuses it
		// instead of allocating a tuple per candidate per world.
		buf := make(value.Tuple, len(candidates[0]))
		step := 0
		space.EachRange(lo, hi, func(v value.Valuation) bool {
			if remaining == 0 || (allDead != nil && allDead.IsSet()) {
				return false
			}
			step++
			if ctx != nil && step%pollInterval == 0 && engine.Canceled(ctx) {
				return false
			}
			res := eval(db.ApplyShared(v))
			for i, t := range candidates {
				if local[i] && !res.Contains(v.ApplyInto(buf, t)) {
					local[i] = false
					remaining--
				}
			}
			return true
		})
		if remaining == 0 && allDead != nil {
			// Nothing can come back to life: every worker may stop.
			allDead.Set()
		}
	}
	shards := space.shards(opts.engine())
	if shards == nil {
		eliminate(nil, 0, space.Size(), alive, nil)
		return alive, nil
	}
	var allDead engine.Flag
	results, err := engine.Map(context.Background(), opts.engine(), len(shards),
		func(ctx context.Context, si int) ([]bool, error) {
			local := make([]bool, len(candidates))
			for i := range local {
				local[i] = true
			}
			eliminate(ctx, shards[si][0], shards[si][1], local, &allDead)
			return local, nil
		})
	if err != nil {
		return nil, err
	}
	for _, local := range results {
		for i := range alive {
			alive[i] = alive[i] && local[i]
		}
	}
	return alive, nil
}

// Intersection computes cert∩(Q, D) = ⋂_{v} Q(v(D)) exactly. The result
// consists of constant tuples only (Section 3.2). Each parallel shard
// intersects its own index range and the shard accumulators are then
// intersected in shard order, which reproduces the serial fold exactly; a
// shard that empties its accumulator raises a flag that stops all others,
// since an empty factor makes the whole intersection empty.
func Intersection(db *relation.Database, q algebra.Expr, opts Options) (*relation.Relation, error) {
	space, err := NewSpaceForQuery(db, q, opts)
	if err != nil {
		return nil, err
	}
	eval := opts.worldEval(db, q, false)
	intersectRange := func(ctx context.Context, lo, hi int, empty *engine.Flag) *relation.Relation {
		var acc *relation.Relation
		step := 0
		space.EachRange(lo, hi, func(v value.Valuation) bool {
			if empty != nil && empty.IsSet() {
				return false
			}
			step++
			if ctx != nil && step%pollInterval == 0 && engine.Canceled(ctx) {
				return false
			}
			res := eval(db.ApplyShared(v))
			if acc == nil {
				acc = res
				return true
			}
			acc = intersect(acc, res)
			if acc.Len() == 0 {
				if empty != nil {
					empty.Set()
				}
				return false
			}
			return true
		})
		return acc
	}

	var acc *relation.Relation
	shards := space.shards(opts.engine())
	if shards == nil {
		acc = intersectRange(nil, 0, space.Size(), nil)
	} else {
		var empty engine.Flag
		parts, err := engine.Map(context.Background(), opts.engine(), len(shards),
			func(ctx context.Context, si int) (*relation.Relation, error) {
				return intersectRange(ctx, shards[si][0], shards[si][1], &empty), nil
			})
		if err != nil {
			return nil, err
		}
		for _, part := range parts {
			if part == nil {
				continue
			}
			if acc == nil {
				acc = part
				continue
			}
			acc = intersect(acc, part)
			if acc.Len() == 0 {
				break
			}
		}
	}
	if acc == nil {
		// No valuations (impossible: the space always has at least one).
		acc = relation.NewArity("cert∩", algebra.Arity(q, db))
	}
	if acc.Len() == 0 {
		return relation.NewArity("cert∩", algebra.Arity(q, db)), nil
	}
	return acc.Rename("cert∩"), nil
}

// intersect returns the set intersection a ∩ b as a fresh relation; both
// the per-shard fold and the shard merge of Intersection use it.
func intersect(a, b *relation.Relation) *relation.Relation {
	out := relation.NewArity("cert∩", a.Arity())
	a.Each(func(t value.Tuple, _ int) {
		if b.Contains(t) {
			out.Add(t)
		}
	})
	return out
}

// forallWorlds reports whether pred holds in every world of the space,
// stopping — across all workers — at the first counterexample.
func forallWorlds(space *Space, opts Options, pred func(v value.Valuation) bool) (bool, error) {
	shards := space.shards(opts.engine())
	if shards == nil {
		holds := true
		space.Each(func(v value.Valuation) bool {
			if !pred(v) {
				holds = false
				return false
			}
			return true
		})
		return holds, nil
	}
	refuted, err := engine.Search(context.Background(), opts.engine(), len(shards),
		func(ctx context.Context, si int) (bool, error) {
			counterexample := false
			step := 0
			space.EachRange(shards[si][0], shards[si][1], func(v value.Valuation) bool {
				step++
				if step%pollInterval == 0 && engine.Canceled(ctx) {
					return false
				}
				if !pred(v) {
					counterexample = true
					return false
				}
				return true
			})
			return counterexample, nil
		})
	if err != nil {
		return false, err
	}
	return !refuted, nil
}

// existsWorld reports whether pred holds in some world of the space,
// stopping — across all workers — at the first witness.
func existsWorld(space *Space, opts Options, pred func(v value.Valuation) bool) (bool, error) {
	holds, err := forallWorlds(space, opts, func(v value.Valuation) bool { return !pred(v) })
	if err != nil {
		return false, err
	}
	return !holds, nil
}

// Bool computes certainty of a Boolean (zero-ary) query: true iff the
// query holds in every possible world of the space.
func Bool(db *relation.Database, q algebra.Expr, opts Options) (bool, error) {
	space, err := NewSpaceForQuery(db, q, opts)
	if err != nil {
		return false, err
	}
	eval := opts.worldEval(db, q, false)
	return forallWorlds(space, opts, func(v value.Valuation) bool {
		return algebra.BooleanResult(eval(db.ApplyShared(v)))
	})
}

// PossibleTuple reports whether some valuation makes t̄ an answer:
// ∃v. v(t̄) ∈ Q(v(D)).
func PossibleTuple(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (bool, error) {
	space, err := spaceForTuple(db, q, t, opts)
	if err != nil {
		return false, err
	}
	return existsWorld(space, opts, tupleInAnswerPred(db, q, t, opts))
}

// CertainTuple reports whether t̄ ∈ cert⊥(Q, D) without computing the whole
// answer set.
func CertainTuple(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (bool, error) {
	space, err := spaceForTuple(db, q, t, opts)
	if err != nil {
		return false, err
	}
	return forallWorlds(space, opts, tupleInAnswerPred(db, q, t, opts))
}

// tupleInAnswerPred builds the per-world membership test v(t̄) ∈ Q(v(D)).
// A null-free t̄ is invariant under every valuation, so the common case
// probes with t̄ itself and allocates nothing per world. (The predicate is
// shared by all workers, so it cannot carry a mutable scratch buffer; the
// prepared plan behind eval is concurrency-safe by construction.)
func tupleInAnswerPred(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) func(v value.Valuation) bool {
	eval := opts.worldEval(db, q, false)
	if !t.HasNull() {
		return func(v value.Valuation) bool {
			return eval(db.ApplyShared(v)).Contains(t)
		}
	}
	return func(v value.Valuation) bool {
		return eval(db.ApplyShared(v)).Contains(v.Apply(t))
	}
}

// BoxMult computes □Q(D, ā) of (6a): the minimum multiplicity of v(ā) in
// the bag evaluation of Q over all valuations v.
func BoxMult(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (int, error) {
	return extremeMult(db, q, t, opts, true)
}

// DiamondMult computes ◇Q(D, ā) of (6b): the maximum multiplicity.
func DiamondMult(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (int, error) {
	return extremeMult(db, q, t, opts, false)
}

// shardBest carries one shard's extremum; seen distinguishes "no worlds
// contributed" (an early-stopped shard) from a genuine zero.
type shardBest struct {
	best int
	seen bool
}

func extremeMult(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options, min bool) (int, error) {
	space, err := spaceForTupleBag(db, q, t, opts)
	if err != nil {
		return 0, err
	}
	eval := opts.worldEval(db, q, true)
	scanRange := func(ctx context.Context, lo, hi int, zero *engine.Flag) shardBest {
		out := shardBest{}
		buf := make(value.Tuple, len(t))
		step := 0
		space.EachRange(lo, hi, func(v value.Valuation) bool {
			if zero != nil && zero.IsSet() {
				return false
			}
			step++
			if ctx != nil && step%pollInterval == 0 && engine.Canceled(ctx) {
				return false
			}
			m := eval(db.ApplyShared(v)).Mult(v.ApplyInto(buf, t))
			if !out.seen {
				out.best = m
				out.seen = true
			} else if (min && m < out.best) || (!min && m > out.best) {
				out.best = m
			}
			if min && out.best == 0 {
				// Early exit: a minimum of zero cannot improve.
				if zero != nil {
					zero.Set()
				}
				return false
			}
			return true
		})
		return out
	}

	shards := space.shards(opts.engine())
	if shards == nil {
		return scanRange(nil, 0, space.Size(), nil).best, nil
	}
	var zero engine.Flag
	parts, err := engine.Map(context.Background(), opts.engine(), len(shards),
		func(ctx context.Context, si int) (shardBest, error) {
			return scanRange(ctx, shards[si][0], shards[si][1], &zero), nil
		})
	if err != nil {
		return 0, err
	}
	if min && zero.IsSet() {
		// Some shard witnessed multiplicity zero; shards interrupted by the
		// flag hold partial extrema, but zero is already the global minimum.
		return 0, nil
	}
	merged := shardBest{}
	for _, p := range parts {
		if !p.seen {
			continue
		}
		if !merged.seen {
			merged = p
		} else if (min && p.best < merged.best) || (!min && p.best > merged.best) {
			merged.best = p.best
		}
	}
	return merged.best, nil
}
