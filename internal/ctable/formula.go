// Package ctable implements conditional tables (c-tables) in the sense of
// Imieliński–Lipski [43] and the four approximation algorithms of Greco,
// Molinaro and Trubitsyna [36] surveyed in Section 4.2 of the paper:
// eager, semi-eager, lazy and aware evaluation. Each is an evaluation of
// relational algebra over c-tables that differs in *when* conditions are
// grounded to the truth values {t, f, u} and when forced equalities are
// propagated into tuples. All four have correctness guarantees
// (Theorem 4.9), and the eager strategy coincides with the Figure 2(b)
// translations: Q⁺(D) = Evalᵉ_t(Q, D) and Q?(D) = Evalᵉ_p(Q, D).
package ctable

import (
	"fmt"
	"sort"

	"incdb/internal/logic"
	"incdb/internal/value"
)

// Formula is a condition attached to a c-tuple: a Boolean combination of
// comparisons between constants and nulls.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// FTrue and FFalse are the constant formulas.
type FTrue struct{}
type FFalse struct{}

// FUnknown is the opaque residue of grounding a condition to u: the eager
// strategies collapse undecided conditions into this literal, deliberately
// losing their structure.
type FUnknown struct{}

// FEq is the atom A = B over constants and nulls.
type FEq struct{ A, B value.Value }

// FNeq is the atom A ≠ B.
type FNeq struct{ A, B value.Value }

// FLess is the atom A < B under the deterministic constant order; it
// grounds to u whenever a null is involved.
type FLess struct{ A, B value.Value }

// FEqTuple is the tuple-equality atom r̄ = s̄ introduced by difference and
// intersection. It is an atom, not a conjunction of FEq, because its
// three-valued grounding is *unification*: certainly true when the tuples
// are identical, certainly false when they do not unify (which a
// position-wise Kleene fold cannot detect for transitive conflicts such as
// (⊥,⊥) vs (a,b)), unknown otherwise. This is precisely what aligns the
// eager strategy with the ⋉⇑ of Figure 2(b) (Theorem 4.9).
type FEqTuple struct{ R, S value.Tuple }

// FAnd, FOr and FNot combine formulas.
type FAnd struct{ L, R Formula }
type FOr struct{ L, R Formula }
type FNot struct{ F Formula }

func (FTrue) isFormula()    {}
func (FEqTuple) isFormula() {}
func (FFalse) isFormula()   {}
func (FUnknown) isFormula() {}
func (FEq) isFormula()      {}
func (FNeq) isFormula()     {}
func (FLess) isFormula()    {}
func (FAnd) isFormula()     {}
func (FOr) isFormula()      {}
func (FNot) isFormula()     {}

func (FTrue) String() string    { return "t" }
func (FFalse) String() string   { return "f" }
func (FUnknown) String() string { return "u" }
func (f FEq) String() string    { return f.A.String() + "=" + f.B.String() }
func (f FNeq) String() string   { return f.A.String() + "≠" + f.B.String() }
func (f FLess) String() string  { return f.A.String() + "<" + f.B.String() }
func (f FEqTuple) String() string {
	return f.R.String() + "=" + f.S.String()
}
func (f FAnd) String() string { return "(" + f.L.String() + " ∧ " + f.R.String() + ")" }
func (f FOr) String() string  { return "(" + f.L.String() + " ∨ " + f.R.String() + ")" }
func (f FNot) String() string { return "¬" + f.F.String() }

// FromTV embeds a truth value as a literal formula.
func FromTV(tv logic.TV) Formula {
	switch tv {
	case logic.T:
		return FTrue{}
	case logic.F:
		return FFalse{}
	default:
		return FUnknown{}
	}
}

// groundAtom evaluates a single comparison three-valuedly: identical values
// are equal in every world; distinct constants differ in every world;
// anything else involving a null is unknown.
func groundAtom(f Formula) logic.TV {
	switch f := f.(type) {
	case FTrue:
		return logic.T
	case FFalse:
		return logic.F
	case FUnknown:
		return logic.U
	case FEq:
		if f.A == f.B {
			return logic.T
		}
		if f.A.IsConst() && f.B.IsConst() {
			return logic.F
		}
		return logic.U
	case FNeq:
		return logic.Not(groundAtom(FEq{f.A, f.B}))
	case FEqTuple:
		if f.R.Equal(f.S) {
			return logic.T
		}
		if !value.Unifiable(f.R, f.S) {
			return logic.F
		}
		return logic.U
	case FLess:
		if f.A.IsConst() && f.B.IsConst() {
			return logic.FromBool(value.Less(f.A, f.B))
		}
		return logic.U
	}
	panic(fmt.Sprintf("ctable: groundAtom: not an atom: %T", f))
}

// Ground evaluates a formula to a truth value in {t, f, u} by a Kleene
// fold over atoms. Deliberately, no cross-atom reasoning happens here:
// grounding ⊥=a ∧ ⊥=b atomwise yields u, exactly as the Figure 2(b)
// queries see it (Q? keeps such rows). The cross-value reasoning required
// for difference lives in the FEqTuple atom (unification), and the deeper
// satisfiability/tautology analysis is the aware strategy's Minimize.
func Ground(f Formula) logic.TV {
	switch f := f.(type) {
	case FTrue, FFalse, FUnknown, FEq, FNeq, FLess, FEqTuple:
		return groundAtom(f)
	case FNot:
		return logic.Not(Ground(f.F))
	case FOr:
		return logic.Or(Ground(f.L), Ground(f.R))
	case FAnd:
		return logic.And(Ground(f.L), Ground(f.R))
	}
	panic(fmt.Sprintf("ctable: Ground: unknown formula %T", f))
}

func flattenAnd(f Formula, acc []Formula) []Formula {
	if a, ok := f.(FAnd); ok {
		return flattenAnd(a.R, flattenAnd(a.L, acc))
	}
	return append(acc, f)
}

func flattenOr(f Formula, acc []Formula) []Formula {
	if o, ok := f.(FOr); ok {
		return flattenOr(o.R, flattenOr(o.L, acc))
	}
	return append(acc, f)
}

// conjunctionSatisfiable checks whether the equality/disequality atoms of
// a flattened conjunction admit a valuation: the equalities must not merge
// two distinct constants and no disequality may link two merged values.
// Non-atomic conjuncts are ignored (treated as satisfiable), keeping the
// check sound as an f-detector.
func conjunctionSatisfiable(conj []Formula) bool {
	uf := map[value.Value]value.Value{}
	cval := map[value.Value]value.Value{}
	var find func(v value.Value) value.Value
	find = func(v value.Value) value.Value {
		p, ok := uf[v]
		if !ok {
			uf[v] = v
			if v.IsConst() {
				cval[v] = v
			}
			return v
		}
		if p == v {
			return v
		}
		r := find(p)
		uf[v] = r
		return r
	}
	union := func(a, b value.Value) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return true
		}
		ca, okA := cval[ra]
		cb, okB := cval[rb]
		if okA && okB && ca != cb {
			return false
		}
		uf[rb] = ra
		if okB {
			cval[ra] = cb
		}
		return true
	}
	for _, g := range conj {
		switch g := g.(type) {
		case FEq:
			if !union(g.A, g.B) {
				return false
			}
		case FEqTuple:
			for i := range g.R {
				if !union(g.R[i], g.S[i]) {
					return false
				}
			}
		}
	}
	for _, g := range conj {
		if ne, ok := g.(FNeq); ok {
			if find(ne.A) == find(ne.B) {
				return false
			}
		}
	}
	return true
}

// ForcedEqualities extracts the substitution implied by the positive
// equality atoms of a conjunction: nulls forced equal to a constant map to
// it; nulls forced equal to each other map to a common representative.
// The result is empty when the formula is not a conjunction of atoms or
// forces nothing.
func ForcedEqualities(f Formula) map[uint64]value.Value {
	conj := flattenAnd(f, nil)
	var pairs [][2]value.Value
	for _, g := range conj {
		switch g := g.(type) {
		case FEq:
			pairs = append(pairs, [2]value.Value{g.A, g.B})
		case FEqTuple:
			for i := range g.R {
				pairs = append(pairs, [2]value.Value{g.R[i], g.S[i]})
			}
		}
	}
	if len(pairs) == 0 {
		return nil
	}
	// Reuse tuple unification over the paired-up values.
	var l, r value.Tuple
	for _, p := range pairs {
		l = append(l, p[0])
		r = append(r, p[1])
	}
	m, ok := value.Unify(l, r)
	if !ok {
		return nil // unsatisfiable: Ground will yield f; nothing to force
	}
	out := map[uint64]value.Value{}
	for id, target := range m {
		if target.IsConst() || target != value.Null(id) {
			out[id] = target
		}
	}
	return out
}

// Substitute applies a null substitution to a formula.
func Substitute(f Formula, m map[uint64]value.Value) Formula {
	sub := func(v value.Value) value.Value {
		for v.IsNull() {
			next, ok := m[v.NullID()]
			if !ok || next == v {
				return v
			}
			v = next
		}
		return v
	}
	switch f := f.(type) {
	case FTrue, FFalse, FUnknown:
		return f
	case FEq:
		return FEq{sub(f.A), sub(f.B)}
	case FNeq:
		return FNeq{sub(f.A), sub(f.B)}
	case FLess:
		return FLess{sub(f.A), sub(f.B)}
	case FEqTuple:
		r := make(value.Tuple, len(f.R))
		sTup := make(value.Tuple, len(f.S))
		for i := range f.R {
			r[i] = sub(f.R[i])
			sTup[i] = sub(f.S[i])
		}
		return FEqTuple{r, sTup}
	case FAnd:
		return FAnd{Substitute(f.L, m), Substitute(f.R, m)}
	case FOr:
		return FOr{Substitute(f.L, m), Substitute(f.R, m)}
	case FNot:
		return FNot{Substitute(f.F, m)}
	}
	panic(fmt.Sprintf("ctable: Substitute: unknown formula %T", f))
}

// SubstituteTuple applies a null substitution to a tuple.
func SubstituteTuple(t value.Tuple, m map[uint64]value.Value) value.Tuple {
	out := make(value.Tuple, len(t))
	for i, v := range t {
		for v.IsNull() {
			next, ok := m[v.NullID()]
			if !ok || next == v {
				break
			}
			v = next
		}
		out[i] = v
	}
	return out
}

// Minimize performs the "minimal rewriting" of the aware strategy:
// decidable atoms are evaluated, constants short-circuit, duplicate
// conjuncts/disjuncts collapse, complementary literals are detected
// (φ ∨ ¬φ is t, φ ∧ ¬φ is f; FEq/FNeq pairs count as complements), and
// unsatisfiable equality conjunctions become f. The output is equivalent
// to the input in every possible world and never less grounded.
func Minimize(f Formula) Formula {
	switch f := f.(type) {
	case FTrue, FFalse, FUnknown:
		return f
	case FEq, FNeq, FLess, FEqTuple:
		return FromTVOrAtom(groundAtom(f), f)
	case FNot:
		inner := Minimize(f.F)
		switch g := inner.(type) {
		case FTrue:
			return FFalse{}
		case FFalse:
			return FTrue{}
		case FUnknown:
			return FUnknown{}
		case FNot:
			return g.F
		case FEq:
			return FNeq{g.A, g.B}
		case FNeq:
			return FEq{g.A, g.B}
		default:
			return FNot{inner}
		}
	case FAnd, FOr:
		isAnd := false
		if _, ok := f.(FAnd); ok {
			isAnd = true
		}
		var parts []Formula
		if isAnd {
			parts = flattenAnd(f, nil)
		} else {
			parts = flattenOr(f, nil)
		}
		var seen formulaSet
		var kept []Formula
		for _, p := range parts {
			p = Minimize(p)
			switch p.(type) {
			case FTrue:
				if !isAnd {
					return FTrue{}
				}
				continue
			case FFalse:
				if isAnd {
					return FFalse{}
				}
				continue
			}
			// Dedup is structural (hash + equalFormula); no rendering here.
			if !seen.add(p) {
				continue
			}
			kept = append(kept, p)
		}
		// Complementary-pair detection.
		for _, p := range kept {
			if seen.has(complementOf(p)) {
				if isAnd {
					return FFalse{}
				}
				return FTrue{}
			}
		}
		if isAnd && !conjunctionSatisfiable(kept) {
			return FFalse{}
		}
		if len(kept) == 0 {
			if isAnd {
				return FTrue{}
			}
			return FFalse{}
		}
		// The output order must stay the historical one — ascending rendered
		// string — so render each survivor once and sort by those keys.
		keys := make([]string, len(kept))
		for i, p := range kept {
			keys[i] = p.String()
		}
		sort.Sort(&byKey{keys: keys, fs: kept})
		acc := kept[0]
		for _, p := range kept[1:] {
			if isAnd {
				acc = FAnd{acc, p}
			} else {
				acc = FOr{acc, p}
			}
		}
		return acc
	}
	panic(fmt.Sprintf("ctable: Minimize: unknown formula %T", f))
}

// FromTVOrAtom keeps the atom when its grounding is undecided, otherwise
// collapses to the literal.
func FromTVOrAtom(tv logic.TV, atom Formula) Formula {
	if tv == logic.U {
		return atom
	}
	return FromTV(tv)
}

// byKey sorts formulas by pre-rendered string keys, keeping the two slices
// aligned; it saves the O(n log n) String() calls of sorting by rendering.
type byKey struct {
	keys []string
	fs   []Formula
}

func (s *byKey) Len() int           { return len(s.keys) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.fs[i], s.fs[j] = s.fs[j], s.fs[i]
}

// EqTuples builds the tuple-equality atom r̄ = s̄ (FTrue for zero-ary
// tuples, FFalse on arity mismatch). The atom retains both tuples without
// copying: formulas treat tuples as immutable, and every rewrite
// (Substitute, SubstituteTuple) allocates fresh ones.
func EqTuples(r, s value.Tuple) Formula {
	if len(r) != len(s) {
		return FFalse{}
	}
	if len(r) == 0 {
		return FTrue{}
	}
	return FEqTuple{R: r, S: s}
}
