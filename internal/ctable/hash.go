package ctable

// Structural hashing and equality for formulas. The aware strategy's
// Minimize dedups conjuncts/disjuncts and detects complementary pairs; it
// used to key both on Formula.String(), allocating a rendering per
// comparison. Here formulas hash by folding tagged 64-bit words over the
// interned value hashes, and candidate collisions are confirmed
// structurally — no string is ever built on the dedup path.

// Per-connective tags; arbitrary odd constants keep the fold asymmetric.
const (
	tagTrue    = 0x9e3779b97f4a7c15
	tagFalse   = 0xc2b2ae3d27d4eb4f
	tagUnknown = 0x165667b19e3779f9
	tagEq      = 0x27d4eb2f165667c5
	tagNeq     = 0x85ebca77c2b2ae63
	tagLess    = 0x2545f4914f6cdd1d
	tagEqTuple = 0xff51afd7ed558ccd
	tagAnd     = 0xc4ceb9fe1a85ec53
	tagOr      = 0x94d049bb133111eb
	tagNot     = 0xbf58476d1ce4e5b9
)

// mix folds x into h with a splitmix64-style avalanche, so that operand
// order matters (FAnd{a,b} and FAnd{b,a} hash apart, like their strings).
func mix(h, x uint64) uint64 {
	h = h ^ x
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// hashFormula returns a structural hash consistent with equalFormula.
func hashFormula(f Formula) uint64 {
	switch f := f.(type) {
	case FTrue:
		return tagTrue
	case FFalse:
		return tagFalse
	case FUnknown:
		return tagUnknown
	case FEq:
		return mix(mix(tagEq, f.A.Hash()), f.B.Hash())
	case FNeq:
		return mix(mix(tagNeq, f.A.Hash()), f.B.Hash())
	case FLess:
		return mix(mix(tagLess, f.A.Hash()), f.B.Hash())
	case FEqTuple:
		return mix(mix(tagEqTuple, f.R.Hash()), f.S.Hash())
	case FAnd:
		return mix(mix(tagAnd, hashFormula(f.L)), hashFormula(f.R))
	case FOr:
		return mix(mix(tagOr, hashFormula(f.L)), hashFormula(f.R))
	case FNot:
		return mix(tagNot, hashFormula(f.F))
	}
	panic("ctable: hashFormula: unknown formula")
}

// equalFormula reports structural equality (same shape, same values).
func equalFormula(a, b Formula) bool {
	switch a := a.(type) {
	case FTrue:
		_, ok := b.(FTrue)
		return ok
	case FFalse:
		_, ok := b.(FFalse)
		return ok
	case FUnknown:
		_, ok := b.(FUnknown)
		return ok
	case FEq:
		bb, ok := b.(FEq)
		return ok && a.A == bb.A && a.B == bb.B
	case FNeq:
		bb, ok := b.(FNeq)
		return ok && a.A == bb.A && a.B == bb.B
	case FLess:
		bb, ok := b.(FLess)
		return ok && a.A == bb.A && a.B == bb.B
	case FEqTuple:
		bb, ok := b.(FEqTuple)
		return ok && a.R.Equal(bb.R) && a.S.Equal(bb.S)
	case FAnd:
		bb, ok := b.(FAnd)
		return ok && equalFormula(a.L, bb.L) && equalFormula(a.R, bb.R)
	case FOr:
		bb, ok := b.(FOr)
		return ok && equalFormula(a.L, bb.L) && equalFormula(a.R, bb.R)
	case FNot:
		bb, ok := b.(FNot)
		return ok && equalFormula(a.F, bb.F)
	}
	panic("ctable: equalFormula: unknown formula")
}

// complementOf returns the syntactic complement of f, mirroring the
// FEq/FNeq and FNot special cases the complementary-pair detection counts
// as complements.
func complementOf(f Formula) Formula {
	switch f := f.(type) {
	case FEq:
		return FNeq{f.A, f.B}
	case FNeq:
		return FEq{f.A, f.B}
	case FNot:
		return f.F
	default:
		return FNot{f}
	}
}

// formulaSet is a hash-native set of formulas with structural membership.
type formulaSet struct {
	buckets map[uint64][]Formula
}

// add inserts f and reports whether it was absent.
func (s *formulaSet) add(f Formula) bool {
	if s.buckets == nil {
		s.buckets = map[uint64][]Formula{}
	}
	h := hashFormula(f)
	for _, g := range s.buckets[h] {
		if equalFormula(f, g) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], f)
	return true
}

// has reports structural membership.
func (s *formulaSet) has(f Formula) bool {
	for _, g := range s.buckets[hashFormula(f)] {
		if equalFormula(f, g) {
			return true
		}
	}
	return false
}
