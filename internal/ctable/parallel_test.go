package ctable

import (
	"fmt"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/engine"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// bigDB builds an instance whose intermediate c-tables exceed parallelRows,
// so EvalWith actually fans out.
func bigDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	for i := 0; i < 400; i++ {
		if i%7 == 0 {
			r.Add(value.T(db.FreshNull(), value.Const(fmt.Sprintf("v%d", i%5))))
		} else {
			r.Add(value.Consts(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i%5)))
		}
	}
	db.Add(r)
	s := relation.New("S", "a")
	for i := 0; i < 30; i++ {
		if i%5 == 0 {
			s.Add(value.T(db.FreshNull()))
		} else {
			s.Add(value.Consts(fmt.Sprintf("k%d", i*11)))
		}
	}
	db.Add(s)
	return db
}

// TestEvalWithMatchesSerial: every strategy must produce a row-for-row
// identical c-table whether the grounding loops run serially or sharded.
func TestEvalWithMatchesSerial(t *testing.T) {
	db := bigDB()
	queries := []algebra.Expr{
		algebra.Sel(algebra.R("R"), algebra.CEqC(1, value.Const("v1"))),
		algebra.Minus(algebra.Proj(algebra.R("R"), 0), algebra.R("S")),
		algebra.Inter(algebra.Proj(algebra.R("R"), 0), algebra.R("S")),
		algebra.Proj(algebra.Join(algebra.R("R"), algebra.R("S"), algebra.CEq(0, 2)), 1),
	}
	for qi, q := range queries {
		for _, s := range []Strategy{Eager, SemiEager, Lazy, Aware} {
			serial, err1 := EvalWith(db, q, s, engine.Options{Workers: 1})
			parallel, err2 := EvalWith(db, q, s, engine.Options{Workers: 8})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("q%d/%v: errs diverge: %v vs %v", qi, s, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if serial.String() != parallel.String() {
				t.Errorf("q%d/%v: c-tables diverge (serial %d rows, parallel %d rows)",
					qi, s, len(serial.Rows), len(parallel.Rows))
			}
		}
	}
}

// TestEvalWithRejectsFragmentViolationsInParallel: a worker panic must
// surface as the same error the serial path reports, not crash the process.
func TestEvalWithRejectsFragmentViolationsInParallel(t *testing.T) {
	db := bigDB()
	bad := algebra.Div(algebra.R("R"), algebra.R("S"))
	for _, workers := range []int{1, 8} {
		if _, err := EvalWith(db, bad, Eager, engine.Options{Workers: workers}); err == nil {
			t.Errorf("workers=%d: expected fragment error", workers)
		}
	}
}
