package ctable

import (
	"math/rand"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/gen"
	"incdb/internal/logic"
	"incdb/internal/relation"
	"incdb/internal/translate"
	"incdb/internal/value"
)

func c(s string) value.Value  { return value.Const(s) }
func n(id uint64) value.Value { return value.Null(id) }

var allStrategies = []Strategy{Eager, SemiEager, Lazy, Aware}

func TestGroundAtoms(t *testing.T) {
	cases := []struct {
		f    Formula
		want logic.TV
	}{
		{FEq{c("a"), c("a")}, logic.T},
		{FEq{c("a"), c("b")}, logic.F},
		{FEq{n(1), n(1)}, logic.T},
		{FEq{n(1), n(2)}, logic.U},
		{FEq{n(1), c("a")}, logic.U},
		{FNeq{n(1), c("a")}, logic.U},
		{FNeq{c("a"), c("b")}, logic.T},
		{FLess{c("2"), c("10")}, logic.T},
		{FLess{n(1), c("10")}, logic.U},
		{FTrue{}, logic.T},
		{FFalse{}, logic.F},
		{FUnknown{}, logic.U},
	}
	for _, tc := range cases {
		if got := Ground(tc.f); got != tc.want {
			t.Errorf("Ground(%s) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestGroundIsAtomwiseButEqTupleUnifies(t *testing.T) {
	// Ground is a pure Kleene fold: ⊥=a ∧ ⊥=b stays u (exactly as the
	// Figure 2(b) queries see it) even though it is jointly unsatisfiable;
	// the aware strategy's Minimize is what detects the conflict.
	f := FAnd{FEq{n(1), c("a")}, FEq{n(1), c("b")}}
	if got := Ground(f); got != logic.U {
		t.Fatalf("Ground = %v, want u (atomwise)", got)
	}
	if got := Ground(Minimize(f)); got != logic.F {
		t.Fatalf("Minimize must detect unsatisfiability: %v", got)
	}
	// Tuple equality is a single atom whose grounding is unification:
	// (⊥,⊥) = (a,b) is certainly false via the transitive conflict.
	g := FEqTuple{R: value.T(n(1), n(1)), S: value.T(c("a"), c("b"))}
	if got := Ground(g); got != logic.F {
		t.Fatalf("Ground(FEqTuple) = %v, want f", got)
	}
	if got := Ground(FEqTuple{R: value.T(n(1), n(2)), S: value.T(c("a"), c("b"))}); got != logic.U {
		t.Fatalf("unifiable non-identical tuples must ground to u: %v", got)
	}
	if got := Ground(FEqTuple{R: value.T(n(1), c("a")), S: value.T(n(1), c("a"))}); got != logic.T {
		t.Fatalf("identical tuples must ground to t: %v", got)
	}
}

func TestGroundKleeneFold(t *testing.T) {
	u := FEq{n(1), c("a")}
	if Ground(FOr{u, FTrue{}}) != logic.T {
		t.Fatalf("u ∨ t = t")
	}
	if Ground(FOr{u, u}) != logic.U {
		t.Fatalf("plain grounding does not detect tautologies")
	}
	if Ground(FNot{u}) != logic.U {
		t.Fatalf("¬u = u")
	}
}

func TestForcedEqualities(t *testing.T) {
	// The paper's semi-eager example: ⊥1=c ∧ ⊥1=⊥2 forces ⊥1,⊥2 ↦ c.
	f := FAnd{FEq{n(1), c("c")}, FEq{n(1), n(2)}}
	m := ForcedEqualities(f)
	if m[1] != c("c") || m[2] != c("c") {
		t.Fatalf("ForcedEqualities = %v", m)
	}
	// Disjunctions force nothing (atoms inside Or are not conjuncts).
	g := FOr{FEq{n(1), c("c")}, FEq{n(1), c("d")}}
	if got := ForcedEqualities(g); len(got) != 0 {
		t.Fatalf("Or must not force: %v", got)
	}
}

func TestSubstitute(t *testing.T) {
	m := map[uint64]value.Value{1: c("k")}
	f := Substitute(FAnd{FEq{n(1), n(2)}, FNeq{n(1), c("z")}}, m)
	want := FAnd{FEq{c("k"), n(2)}, FNeq{c("k"), c("z")}}
	if f.String() != want.String() {
		t.Fatalf("Substitute = %s, want %s", f, want)
	}
	tp := SubstituteTuple(value.T(n(1), n(3)), m)
	if !tp.Equal(value.T(c("k"), n(3))) {
		t.Fatalf("SubstituteTuple = %v", tp)
	}
}

func TestMinimizeTautologyAndContradiction(t *testing.T) {
	u1 := FEq{n(1), c("a")}
	// φ ∨ ¬φ with FEq/FNeq complements → t.
	taut := FOr{u1, FNeq{n(1), c("a")}}
	if _, ok := Minimize(taut).(FTrue); !ok {
		t.Fatalf("Minimize(%s) = %s, want t", taut, Minimize(taut))
	}
	// φ ∧ ¬φ → f.
	contra := FAnd{u1, FNeq{n(1), c("a")}}
	if _, ok := Minimize(contra).(FFalse); !ok {
		t.Fatalf("Minimize(%s) = %s, want f", contra, Minimize(contra))
	}
	// Unsat conjunction → f.
	unsat := FAnd{FEq{n(1), c("a")}, FEq{n(1), c("b")}}
	if _, ok := Minimize(unsat).(FFalse); !ok {
		t.Fatalf("Minimize(%s) should be f", unsat)
	}
	// Duplicates collapse: u ∨ u keeps a single atom.
	dup := Minimize(FOr{u1, u1})
	if dup.String() != u1.String() {
		t.Fatalf("Minimize dedup = %s", dup)
	}
}

func TestMinimizePreservesGroundValue(t *testing.T) {
	// Property: Minimize never changes the grounded value except u → t/f
	// (more information). Check over random formulas.
	r := rand.New(rand.NewSource(9))
	vals := []value.Value{c("a"), c("b"), n(1), n(2)}
	var randF func(depth int) Formula
	randF = func(depth int) Formula {
		if depth == 0 {
			a, b := vals[r.Intn(len(vals))], vals[r.Intn(len(vals))]
			switch r.Intn(3) {
			case 0:
				return FEq{a, b}
			case 1:
				return FNeq{a, b}
			default:
				return FLess{a, b}
			}
		}
		switch r.Intn(3) {
		case 0:
			return FAnd{randF(depth - 1), randF(depth - 1)}
		case 1:
			return FOr{randF(depth - 1), randF(depth - 1)}
		default:
			return FNot{randF(depth - 1)}
		}
	}
	for i := 0; i < 500; i++ {
		f := randF(3)
		before, after := Ground(f), Ground(Minimize(f))
		if before != after && before != logic.U {
			t.Fatalf("Minimize changed %s: %v → %v", f, before, after)
		}
	}
}

func exampleDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.T(n(1)))
	db.Add(s)
	return db
}

func TestEvalBaseAndDifference(t *testing.T) {
	db := exampleDB()
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	for _, s := range allStrategies {
		tr, err := EvalTrue(db, q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if tr.Len() != 0 {
			t.Errorf("%v: Eval_t = %v, want ∅ (1 may equal ⊥)", s, tr)
		}
		ps, err := EvalPossible(db, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if !ps.Contains(value.Consts("1")) {
			t.Errorf("%v: Eval_p = %v, want {1}", s, ps)
		}
	}
}

// The aware strategy sees through the introduction's tautology example
// where the others cannot: σ(a=o2 ∨ a≠o2)(P) on P = {o1, ⊥}.
func TestAwareDetectsTautology(t *testing.T) {
	db := relation.NewDatabase()
	p := relation.New("P", "oid")
	p.Add(value.Consts("o1"))
	p.Add(value.T(n(1)))
	db.Add(p)
	q := algebra.Sel(algebra.R("P"), algebra.COr(
		algebra.CEqC(0, c("o2")),
		algebra.CNeqC(0, c("o2")),
	))
	for _, s := range []Strategy{Eager, SemiEager, Lazy} {
		tr, err := EvalTrue(db, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 1 {
			t.Errorf("%v should certify only o1: %v", s, tr)
		}
	}
	tr, err := EvalTrue(db, q, Aware)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Errorf("aware should certify both (tautology): %v", tr)
	}
	// And this matches the exact certain answers.
	cert, err := certain.WithNulls(db, q, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.EqualSet(cert) {
		t.Errorf("aware = %v, cert⊥ = %v", tr, cert)
	}
}

// The semi-eager refinement: projection of a join forcing ⊥ = c yields the
// instantiated tuple c rather than ⊥.
func TestSemiEagerPropagatesEqualities(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.T(n(1)))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.Consts("k"))
	db.Add(s)
	// π0(σ_{#0=#1}(R × S)): the condition forces ⊥1 = k.
	q := algebra.Proj(algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 1)), 0)
	eag, err := EvalPossible(db, q, Eager)
	if err != nil {
		t.Fatal(err)
	}
	sem, err := EvalPossible(db, q, SemiEager)
	if err != nil {
		t.Fatal(err)
	}
	if !eag.Contains(value.T(n(1))) {
		t.Errorf("eager keeps the null form: %v", eag)
	}
	if !sem.Contains(value.Consts("k")) {
		t.Errorf("semi-eager must instantiate ⊥1 to k: %v", sem)
	}
}

// Aware prunes conditions that are jointly unsatisfiable across operators,
// which strategies grounding atomwise cannot see.
func TestAwarePrunesUnsatisfiableConditions(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.T(n(1)))
	db.Add(r)
	// σ_{a=c1}(σ_{a=c2}(R)): jointly unsatisfiable on ⊥1.
	q := algebra.Sel(algebra.Sel(algebra.R("R"), algebra.CEqC(0, c("c2"))), algebra.CEqC(0, c("c1")))
	for _, s := range []Strategy{Eager, Lazy} {
		ps, err := EvalPossible(db, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Len() == 0 {
			t.Errorf("%v grounds atomwise and keeps the row as possible: %v", s, ps)
		}
	}
	// Semi-eager prunes too, through a different mechanism: it instantiates
	// ⊥1 ↦ c2 after the first selection, making the second decidably false.
	for _, s := range []Strategy{SemiEager, Aware} {
		ps, err := EvalPossible(db, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Len() != 0 {
			t.Errorf("%v must prune the unsatisfiable row: %v", s, ps)
		}
	}
}

// Theorem 4.9, first half: Q⁺(D) = Evalᵉ_t(Q,D) and Q?(D) = Evalᵉ_p(Q,D).
func TestEagerMatchesFig2b(t *testing.T) {
	r := rand.New(rand.NewSource(409))
	cfg := gen.DefaultConfig()
	qcfg := gen.DefaultQueryConfig()
	for trial := 0; trial < 200; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1+r.Intn(2))
		plus, poss, err := translate.Fig2b(q)
		if err != nil {
			t.Fatal(err)
		}
		wantPlus := algebra.Naive(db, plus)
		wantPoss := algebra.Naive(db, poss)
		gotTrue, err := EvalTrue(db, q, Eager)
		if err != nil {
			t.Fatal(err)
		}
		gotPoss, err := EvalPossible(db, q, Eager)
		if err != nil {
			t.Fatal(err)
		}
		if !gotTrue.EqualSet(wantPlus) {
			t.Fatalf("trial %d: Evalᵉ_t = %v ≠ Q+ = %v\nQ = %s\nD = %v",
				trial, gotTrue, wantPlus, q, db)
		}
		if !gotPoss.EqualSet(wantPoss) {
			t.Fatalf("trial %d: Evalᵉ_p = %v ≠ Q? = %v\nQ = %s\nD = %v",
				trial, gotPoss, wantPoss, q, db)
		}
	}
}

// Theorem 4.9, second half: every strategy has correctness guarantees
// (Eval⋆_t ⊆ cert⊥), and the certain parts are ordered
// eager ⊆ semi-eager ⊆ lazy ⊆ aware.
func TestStrategiesCorrectAndOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(436))
	cfg := gen.DefaultConfig()
	qcfg := gen.DefaultQueryConfig()
	for trial := 0; trial < 120; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1+r.Intn(2))
		cert, err := certain.WithNulls(db, q, certain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var results []*relation.Relation
		for _, s := range allStrategies {
			tr, err := EvalTrue(db, q, s)
			if err != nil {
				t.Fatal(err)
			}
			if !tr.SubsetOfSet(cert) {
				t.Fatalf("trial %d: Eval%v_t ⊄ cert⊥\nQ = %s\nD = %v\ngot %v cert %v",
					trial, s, q, db, tr, cert)
			}
			results = append(results, tr)
		}
		for i := 0; i+1 < len(results); i++ {
			if !results[i].SubsetOfSet(results[i+1]) {
				t.Fatalf("trial %d: Eval%v_t ⊄ Eval%v_t\nQ = %s\nD = %v",
					trial, allStrategies[i], allStrategies[i+1], q, db)
			}
		}
	}
}

// Possible sides over-approximate: Q(v(D)) ⊆ v(Eval⋆_p) for all valuations.
func TestPossibleSidesOverApproximate(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	cfg := gen.DefaultConfig()
	qcfg := gen.DefaultQueryConfig()
	for trial := 0; trial < 60; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1)
		space, err := certain.NewSpace(db, algebra.ConstsOf(q), certain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range allStrategies {
			ps, err := EvalPossible(db, q, s)
			if err != nil {
				t.Fatal(err)
			}
			space.Each(func(v value.Valuation) bool {
				res := algebra.Eval(db.Apply(v), q, algebra.ModeNaive)
				img := relation.NewArity("img", ps.Arity())
				ps.Each(func(tp value.Tuple, _ int) { img.Add(v.Apply(tp)) })
				ok := true
				res.Each(func(tp value.Tuple, _ int) {
					if !img.Contains(tp) {
						t.Errorf("trial %d %v: %v ∈ Q(v(D)) missing from v(Eval_p)\nQ = %s\nD = %v\nv = %v",
							trial, s, tp, q, db, v)
						ok = false
					}
				})
				return ok
			})
			if t.Failed() {
				return
			}
		}
	}
}

func TestOutsideFragment(t *testing.T) {
	db := gen.Schema()
	if _, err := Eval(db, algebra.Div(algebra.R("R"), algebra.R("S")), Eager); err == nil {
		t.Fatalf("division should be rejected")
	}
	if _, err := Eval(db, algebra.Sel(algebra.R("S"), algebra.CIn(algebra.R("S"), 0)), Aware); err == nil {
		t.Fatalf("IN subquery should be rejected")
	}
	if _, err := Eval(db, algebra.R("missing"), Lazy); err == nil {
		t.Fatalf("unknown relation should be rejected")
	}
}

func TestCTableString(t *testing.T) {
	db := exampleDB()
	ct, err := Eval(db, algebra.R("S"), Aware)
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.String(); got == "" {
		t.Fatalf("empty rendering")
	}
}
