package ctable

import (
	"fmt"

	"incdb/internal/algebra"
	"incdb/internal/engine"
	"incdb/internal/logic"
	"incdb/internal/plan"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// parallelRows is the row count below which per-row work (formula
// construction, grounding, minimization) stays serial: c-table rows are
// cheaper than oracle worlds, so the bar sits above engine.MinParallel.
const parallelRows = 4 * engine.MinParallel

// chunked is engine.Chunked at this package's row threshold; worker panics
// re-throw on the caller, so EvalWith's recover sees them exactly as it
// would from the serial loop.
func chunked[T any](eng engine.Options, n int, f func(i int) T) []T {
	return engine.Chunked(eng, n, parallelRows, f)
}

// CTuple is a conditional tuple ⟨t̄, φ⟩: t̄ belongs to the relation exactly
// in the possible worlds whose valuation satisfies φ.
type CTuple struct {
	T   value.Tuple
	Phi Formula
}

// CTable is a conditional relation: a list of c-tuples of fixed arity.
type CTable struct {
	Arity int
	Rows  []CTuple
}

// Strategy selects one of the four evaluation algorithms of [36].
type Strategy int

const (
	// Eager grounds conditions to {t,f,u} immediately after every
	// operator.
	Eager Strategy = iota
	// SemiEager additionally propagates forced equalities into tuples
	// before grounding (⟨⊥₂, ⊥₁=c ∧ ⊥₁=⊥₂⟩ becomes ⟨c, u⟩).
	SemiEager
	// Lazy propagates and grounds only at difference operators and once
	// at the very end.
	Lazy
	// Aware postpones everything to the end and grounds a minimal
	// rewriting of the conditions, catching tautologies and
	// unsatisfiable conditions that stepwise grounding misses.
	Aware
)

func (s Strategy) String() string {
	switch s {
	case Eager:
		return "eager"
	case SemiEager:
		return "semi-eager"
	case Lazy:
		return "lazy"
	case Aware:
		return "aware"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Eval evaluates q over db as a conditional table under the given
// strategy. The supported fragment is the core relational algebra of the
// Figure 2 translations (σ, π, ×, ∪, −, ∩); conditions may use
// comparisons but not IN subqueries.
func Eval(db *relation.Database, q algebra.Expr, s Strategy) (*CTable, error) {
	return EvalWith(db, q, s, engine.Options{})
}

// EvalWith is Eval with an explicit worker pool: the per-row formula
// construction, grounding and minimization loops are sharded over eng's
// workers with order-preserving merges, so the resulting c-table is
// row-for-row identical to the serial evaluation.
//
// Before evaluation the query runs through the planner's logical optimizer
// (plan.Optimize): selection conjuncts are split and pushed below products
// and unions, so rows whose conditions ground to f are dropped before the
// quadratic product and difference steps instead of after them. The
// rewrites stay inside the c-table fragment, and all four strategies see
// the same optimized shape, preserving the Theorem 4.9 inclusion ordering
// (which is a per-query statement).
func EvalWith(db *relation.Database, q algebra.Expr, s Strategy, eng engine.Options) (*CTable, error) {
	var out *CTable
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("ctable: %v", r)
			}
		}()
		checkFragment(q)
		// The cached optimizer shares one logical rewrite per (query,
		// schema) with the planner, so repeated c-table evaluations of the
		// same query (server workloads) skip re-optimizing.
		q = plan.OptimizedFor(q, db)
		out = eval(db, q, s, eng)
		out = finalize(out, s, eng)
		return nil
	}()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvalTrue returns Eval⋆_t(Q, D) of (9a): the tuples whose final condition
// grounds to t. By Theorem 4.9 these are certain answers.
func EvalTrue(db *relation.Database, q algebra.Expr, s Strategy) (*relation.Relation, error) {
	ct, err := Eval(db, q, s)
	if err != nil {
		return nil, err
	}
	return ct.Extract(true), nil
}

// EvalPossible returns Eval⋆_p(Q, D) of (9b): tuples whose final condition
// grounds to t or u.
func EvalPossible(db *relation.Database, q algebra.Expr, s Strategy) (*relation.Relation, error) {
	ct, err := Eval(db, q, s)
	if err != nil {
		return nil, err
	}
	return ct.Extract(false), nil
}

// Extract converts the grounded c-table into a plain relation: onlyTrue
// keeps condition t, otherwise t and u.
func (c *CTable) Extract(onlyTrue bool) *relation.Relation {
	out := relation.NewArity("eval", c.Arity)
	for _, row := range c.Rows {
		switch Ground(row.Phi) {
		case logic.T:
			out.Add(row.T)
		case logic.U:
			if !onlyTrue {
				out.Add(row.T)
			}
		}
	}
	return out
}

func eval(db *relation.Database, q algebra.Expr, s Strategy, eng engine.Options) *CTable {
	switch q := q.(type) {
	case algebra.Rel:
		src := db.Relation(q.Name)
		if src == nil {
			panic("unknown relation " + q.Name)
		}
		ct := &CTable{Arity: src.Arity()}
		src.Each(func(t value.Tuple, _ int) {
			// Stored tuples are immutable and every downstream rewrite
			// (Project, Concat, SubstituteTuple) builds fresh tuples, so the
			// c-table shares them instead of cloning per row.
			ct.Rows = append(ct.Rows, CTuple{T: t, Phi: FTrue{}})
		})
		return ct

	case algebra.Select:
		in := eval(db, q.In, s, eng)
		out := &CTable{Arity: in.Arity}
		out.Rows = chunked(eng, len(in.Rows), func(i int) CTuple {
			row := in.Rows[i]
			return CTuple{T: row.T, Phi: FAnd{row.Phi, condFormula(q.Cond, row.T)}}
		})
		return process(out, s, false, eng)

	case algebra.Project:
		in := eval(db, q.In, s, eng)
		out := &CTable{Arity: len(q.Cols)}
		out.Rows = chunked(eng, len(in.Rows), func(i int) CTuple {
			row := in.Rows[i]
			return CTuple{T: row.T.Project(q.Cols), Phi: row.Phi}
		})
		return process(out, s, false, eng)

	case algebra.Product:
		l, r := eval(db, q.L, s, eng), eval(db, q.R, s, eng)
		out := &CTable{Arity: l.Arity + r.Arity}
		if len(r.Rows) > 0 {
			out.Rows = chunked(eng, len(l.Rows)*len(r.Rows), func(i int) CTuple {
				lr, rr := l.Rows[i/len(r.Rows)], r.Rows[i%len(r.Rows)]
				return CTuple{T: lr.T.Concat(rr.T), Phi: FAnd{lr.Phi, rr.Phi}}
			})
		}
		return process(out, s, false, eng)

	case algebra.Union:
		l, r := eval(db, q.L, s, eng), eval(db, q.R, s, eng)
		out := &CTable{Arity: l.Arity}
		out.Rows = append(out.Rows, l.Rows...)
		out.Rows = append(out.Rows, r.Rows...)
		return process(out, s, false, eng)

	case algebra.Diff:
		l, r := eval(db, q.L, s, eng), eval(db, q.R, s, eng)
		out := &CTable{Arity: l.Arity}
		out.Rows = chunked(eng, len(l.Rows), func(i int) CTuple {
			lr := l.Rows[i]
			phi := lr.Phi
			for _, rr := range r.Rows {
				// A subtrahend row that cannot unify with lr.T is certainly
				// different in every world: its conjunct ¬(φ ∧ f) is ⊤, so
				// skipping it leaves the grounding (and the aware
				// minimization) of the row condition unchanged while the
				// formula stays linear in the rows that can actually match.
				if !value.Unifiable(lr.T, rr.T) {
					continue
				}
				phi = FAnd{phi, FNot{FAnd{rr.Phi, EqTuples(lr.T, rr.T)}}}
			}
			return CTuple{T: lr.T, Phi: phi}
		})
		return process(out, s, true, eng)

	case algebra.Intersect:
		l, r := eval(db, q.L, s, eng), eval(db, q.R, s, eng)
		out := &CTable{Arity: l.Arity}
		out.Rows = chunked(eng, len(l.Rows), func(i int) CTuple {
			lr := l.Rows[i]
			var match Formula = FFalse{}
			first := true
			for _, rr := range r.Rows {
				// Mirror image of the difference case: a right row that
				// cannot unify contributes the disjunct φ ∧ f ≡ ⊥, which is
				// the identity of the fold (and of its FFalse base case).
				if !value.Unifiable(lr.T, rr.T) {
					continue
				}
				m := FAnd{rr.Phi, EqTuples(lr.T, rr.T)}
				if first {
					match = m
					first = false
				} else {
					match = FOr{match, m}
				}
			}
			return CTuple{T: lr.T, Phi: FAnd{lr.Phi, match}}
		})
		return process(out, s, true, eng)
	}
	panic(fmt.Sprintf("operator %T is outside the c-table fragment", q))
}

// checkFragment rejects operators outside the c-table fragment up front,
// so that queries are refused even when the offending node would see no
// rows (e.g. a selection over an empty relation).
func checkFragment(q algebra.Expr) {
	switch q := q.(type) {
	case algebra.Rel:
	case algebra.Select:
		checkFragment(q.In)
		checkCondFragment(q.Cond)
	case algebra.Project:
		checkFragment(q.In)
	case algebra.Product:
		checkFragment(q.L)
		checkFragment(q.R)
	case algebra.Union:
		checkFragment(q.L)
		checkFragment(q.R)
	case algebra.Diff:
		checkFragment(q.L)
		checkFragment(q.R)
	case algebra.Intersect:
		checkFragment(q.L)
		checkFragment(q.R)
	default:
		panic(fmt.Sprintf("operator %T is outside the c-table fragment", q))
	}
}

func checkCondFragment(c algebra.Cond) {
	switch c := c.(type) {
	case algebra.And:
		checkCondFragment(c.L)
		checkCondFragment(c.R)
	case algebra.Or:
		checkCondFragment(c.L)
		checkCondFragment(c.R)
	case algebra.Not:
		checkCondFragment(c.C)
	case algebra.InSub:
		panic("IN subqueries are outside the c-table fragment")
	}
}

// condFormula instantiates a selection condition on a concrete tuple.
// const/null tests are trivial on possible worlds (Section 3.1), matching
// the translate package's normalization.
func condFormula(c algebra.Cond, t value.Tuple) Formula {
	switch c := c.(type) {
	case algebra.True:
		return FTrue{}
	case algebra.False:
		return FFalse{}
	case algebra.Eq:
		return FEq{t[c.I], t[c.J]}
	case algebra.EqConst:
		return FEq{t[c.I], c.C}
	case algebra.Neq:
		return FNeq{t[c.I], t[c.J]}
	case algebra.NeqConst:
		return FNeq{t[c.I], c.C}
	case algebra.Less:
		return FLess{t[c.I], t[c.J]}
	case algebra.LessConst:
		return FLess{t[c.I], c.C}
	case algebra.GreaterConst:
		return FLess{c.C, t[c.I]}
	case algebra.IsConst:
		return FTrue{}
	case algebra.IsNull:
		return FFalse{}
	case algebra.And:
		return FAnd{condFormula(c.L, t), condFormula(c.R, t)}
	case algebra.Or:
		return FOr{condFormula(c.L, t), condFormula(c.R, t)}
	case algebra.Not:
		return FNot{condFormula(c.C, t)}
	}
	panic(fmt.Sprintf("condition %T is outside the c-table fragment", c))
}

// process applies the strategy's per-operator treatment. afterDiff marks
// operators at which the lazy strategy grounds.
func process(ct *CTable, s Strategy, afterDiff bool, eng engine.Options) *CTable {
	switch s {
	case Eager:
		return groundAll(ct, false, eng)
	case SemiEager:
		return groundAll(ct, true, eng)
	case Lazy:
		if afterDiff {
			return groundAll(ct, true, eng)
		}
		return ct
	case Aware:
		return ct
	}
	panic(fmt.Sprintf("unknown strategy %v", s))
}

// finalize applies the end-of-query treatment.
func finalize(ct *CTable, s Strategy, eng engine.Options) *CTable {
	switch s {
	case Eager:
		return ct // already grounded stepwise
	case SemiEager:
		return ct
	case Lazy:
		return groundAll(ct, true, eng)
	case Aware:
		min := &CTable{Arity: ct.Arity}
		min.Rows = chunked(eng, len(ct.Rows), func(i int) CTuple {
			return CTuple{T: ct.Rows[i].T, Phi: Minimize(ct.Rows[i].Phi)}
		})
		return groundAll(min, true, eng)
	}
	panic(fmt.Sprintf("unknown strategy %v", s))
}

// groundAll grounds every row's condition to a literal, dropping f rows.
// With propagate set, forced equalities are first substituted into the
// tuple (the semi-eager refinement). Rows ground independently; the f rows
// are filtered out after the order-preserving fan-out, so the surviving
// rows keep their serial order.
func groundAll(ct *CTable, propagate bool, eng engine.Options) *CTable {
	grounded := chunked(eng, len(ct.Rows), func(i int) CTuple {
		row := ct.Rows[i]
		tv := Ground(row.Phi)
		if tv == logic.F {
			return CTuple{} // dropped below
		}
		t := row.T
		if propagate && tv == logic.U {
			if m := ForcedEqualities(row.Phi); len(m) > 0 {
				t = SubstituteTuple(t, m)
			}
		}
		return CTuple{T: t, Phi: FromTV(tv)}
	})
	out := &CTable{Arity: ct.Arity}
	for _, row := range grounded {
		if row.Phi == nil {
			continue
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// String renders the c-table deterministically for debugging.
func (c *CTable) String() string {
	s := fmt.Sprintf("ctable/%d {\n", c.Arity)
	for _, row := range c.Rows {
		s += "  ⟨" + row.T.String() + ", " + row.Phi.String() + "⟩\n"
	}
	return s + "}"
}
