package ctable

import (
	"fmt"

	"incdb/internal/algebra"
	"incdb/internal/logic"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// CTuple is a conditional tuple ⟨t̄, φ⟩: t̄ belongs to the relation exactly
// in the possible worlds whose valuation satisfies φ.
type CTuple struct {
	T   value.Tuple
	Phi Formula
}

// CTable is a conditional relation: a list of c-tuples of fixed arity.
type CTable struct {
	Arity int
	Rows  []CTuple
}

// Strategy selects one of the four evaluation algorithms of [36].
type Strategy int

const (
	// Eager grounds conditions to {t,f,u} immediately after every
	// operator.
	Eager Strategy = iota
	// SemiEager additionally propagates forced equalities into tuples
	// before grounding (⟨⊥₂, ⊥₁=c ∧ ⊥₁=⊥₂⟩ becomes ⟨c, u⟩).
	SemiEager
	// Lazy propagates and grounds only at difference operators and once
	// at the very end.
	Lazy
	// Aware postpones everything to the end and grounds a minimal
	// rewriting of the conditions, catching tautologies and
	// unsatisfiable conditions that stepwise grounding misses.
	Aware
)

func (s Strategy) String() string {
	switch s {
	case Eager:
		return "eager"
	case SemiEager:
		return "semi-eager"
	case Lazy:
		return "lazy"
	case Aware:
		return "aware"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Eval evaluates q over db as a conditional table under the given
// strategy. The supported fragment is the core relational algebra of the
// Figure 2 translations (σ, π, ×, ∪, −, ∩); conditions may use
// comparisons but not IN subqueries.
func Eval(db *relation.Database, q algebra.Expr, s Strategy) (*CTable, error) {
	var out *CTable
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("ctable: %v", r)
			}
		}()
		checkFragment(q)
		out = eval(db, q, s)
		out = finalize(out, s)
		return nil
	}()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvalTrue returns Eval⋆_t(Q, D) of (9a): the tuples whose final condition
// grounds to t. By Theorem 4.9 these are certain answers.
func EvalTrue(db *relation.Database, q algebra.Expr, s Strategy) (*relation.Relation, error) {
	ct, err := Eval(db, q, s)
	if err != nil {
		return nil, err
	}
	return ct.Extract(true), nil
}

// EvalPossible returns Eval⋆_p(Q, D) of (9b): tuples whose final condition
// grounds to t or u.
func EvalPossible(db *relation.Database, q algebra.Expr, s Strategy) (*relation.Relation, error) {
	ct, err := Eval(db, q, s)
	if err != nil {
		return nil, err
	}
	return ct.Extract(false), nil
}

// Extract converts the grounded c-table into a plain relation: onlyTrue
// keeps condition t, otherwise t and u.
func (c *CTable) Extract(onlyTrue bool) *relation.Relation {
	out := relation.NewArity("eval", c.Arity)
	for _, row := range c.Rows {
		switch Ground(row.Phi) {
		case logic.T:
			out.Add(row.T)
		case logic.U:
			if !onlyTrue {
				out.Add(row.T)
			}
		}
	}
	return out
}

func eval(db *relation.Database, q algebra.Expr, s Strategy) *CTable {
	switch q := q.(type) {
	case algebra.Rel:
		src := db.Relation(q.Name)
		if src == nil {
			panic("unknown relation " + q.Name)
		}
		ct := &CTable{Arity: src.Arity()}
		src.Each(func(t value.Tuple, _ int) {
			ct.Rows = append(ct.Rows, CTuple{T: t.Clone(), Phi: FTrue{}})
		})
		return ct

	case algebra.Select:
		in := eval(db, q.In, s)
		out := &CTable{Arity: in.Arity}
		for _, row := range in.Rows {
			phi := FAnd{row.Phi, condFormula(q.Cond, row.T)}
			out.Rows = append(out.Rows, CTuple{T: row.T, Phi: phi})
		}
		return process(out, s, false)

	case algebra.Project:
		in := eval(db, q.In, s)
		out := &CTable{Arity: len(q.Cols)}
		for _, row := range in.Rows {
			out.Rows = append(out.Rows, CTuple{T: row.T.Project(q.Cols), Phi: row.Phi})
		}
		return process(out, s, false)

	case algebra.Product:
		l, r := eval(db, q.L, s), eval(db, q.R, s)
		out := &CTable{Arity: l.Arity + r.Arity}
		for _, lr := range l.Rows {
			for _, rr := range r.Rows {
				out.Rows = append(out.Rows, CTuple{T: lr.T.Concat(rr.T), Phi: FAnd{lr.Phi, rr.Phi}})
			}
		}
		return process(out, s, false)

	case algebra.Union:
		l, r := eval(db, q.L, s), eval(db, q.R, s)
		out := &CTable{Arity: l.Arity}
		out.Rows = append(out.Rows, l.Rows...)
		out.Rows = append(out.Rows, r.Rows...)
		return process(out, s, false)

	case algebra.Diff:
		l, r := eval(db, q.L, s), eval(db, q.R, s)
		out := &CTable{Arity: l.Arity}
		for _, lr := range l.Rows {
			phi := lr.Phi
			for _, rr := range r.Rows {
				phi = FAnd{phi, FNot{FAnd{rr.Phi, EqTuples(lr.T, rr.T)}}}
			}
			out.Rows = append(out.Rows, CTuple{T: lr.T, Phi: phi})
		}
		return process(out, s, true)

	case algebra.Intersect:
		l, r := eval(db, q.L, s), eval(db, q.R, s)
		out := &CTable{Arity: l.Arity}
		for _, lr := range l.Rows {
			var match Formula = FFalse{}
			first := true
			for _, rr := range r.Rows {
				m := FAnd{rr.Phi, EqTuples(lr.T, rr.T)}
				if first {
					match = m
					first = false
				} else {
					match = FOr{match, m}
				}
			}
			out.Rows = append(out.Rows, CTuple{T: lr.T, Phi: FAnd{lr.Phi, match}})
		}
		return process(out, s, true)
	}
	panic(fmt.Sprintf("operator %T is outside the c-table fragment", q))
}

// checkFragment rejects operators outside the c-table fragment up front,
// so that queries are refused even when the offending node would see no
// rows (e.g. a selection over an empty relation).
func checkFragment(q algebra.Expr) {
	switch q := q.(type) {
	case algebra.Rel:
	case algebra.Select:
		checkFragment(q.In)
		checkCondFragment(q.Cond)
	case algebra.Project:
		checkFragment(q.In)
	case algebra.Product:
		checkFragment(q.L)
		checkFragment(q.R)
	case algebra.Union:
		checkFragment(q.L)
		checkFragment(q.R)
	case algebra.Diff:
		checkFragment(q.L)
		checkFragment(q.R)
	case algebra.Intersect:
		checkFragment(q.L)
		checkFragment(q.R)
	default:
		panic(fmt.Sprintf("operator %T is outside the c-table fragment", q))
	}
}

func checkCondFragment(c algebra.Cond) {
	switch c := c.(type) {
	case algebra.And:
		checkCondFragment(c.L)
		checkCondFragment(c.R)
	case algebra.Or:
		checkCondFragment(c.L)
		checkCondFragment(c.R)
	case algebra.Not:
		checkCondFragment(c.C)
	case algebra.InSub:
		panic("IN subqueries are outside the c-table fragment")
	}
}

// condFormula instantiates a selection condition on a concrete tuple.
// const/null tests are trivial on possible worlds (Section 3.1), matching
// the translate package's normalization.
func condFormula(c algebra.Cond, t value.Tuple) Formula {
	switch c := c.(type) {
	case algebra.True:
		return FTrue{}
	case algebra.False:
		return FFalse{}
	case algebra.Eq:
		return FEq{t[c.I], t[c.J]}
	case algebra.EqConst:
		return FEq{t[c.I], c.C}
	case algebra.Neq:
		return FNeq{t[c.I], t[c.J]}
	case algebra.NeqConst:
		return FNeq{t[c.I], c.C}
	case algebra.Less:
		return FLess{t[c.I], t[c.J]}
	case algebra.LessConst:
		return FLess{t[c.I], c.C}
	case algebra.GreaterConst:
		return FLess{c.C, t[c.I]}
	case algebra.IsConst:
		return FTrue{}
	case algebra.IsNull:
		return FFalse{}
	case algebra.And:
		return FAnd{condFormula(c.L, t), condFormula(c.R, t)}
	case algebra.Or:
		return FOr{condFormula(c.L, t), condFormula(c.R, t)}
	case algebra.Not:
		return FNot{condFormula(c.C, t)}
	}
	panic(fmt.Sprintf("condition %T is outside the c-table fragment", c))
}

// process applies the strategy's per-operator treatment. afterDiff marks
// operators at which the lazy strategy grounds.
func process(ct *CTable, s Strategy, afterDiff bool) *CTable {
	switch s {
	case Eager:
		return groundAll(ct, false)
	case SemiEager:
		return groundAll(ct, true)
	case Lazy:
		if afterDiff {
			return groundAll(ct, true)
		}
		return ct
	case Aware:
		return ct
	}
	panic(fmt.Sprintf("unknown strategy %v", s))
}

// finalize applies the end-of-query treatment.
func finalize(ct *CTable, s Strategy) *CTable {
	switch s {
	case Eager:
		return ct // already grounded stepwise
	case SemiEager:
		return ct
	case Lazy:
		return groundAll(ct, true)
	case Aware:
		min := &CTable{Arity: ct.Arity}
		for _, row := range ct.Rows {
			min.Rows = append(min.Rows, CTuple{T: row.T, Phi: Minimize(row.Phi)})
		}
		return groundAll(min, true)
	}
	panic(fmt.Sprintf("unknown strategy %v", s))
}

// groundAll grounds every row's condition to a literal, dropping f rows.
// With propagate set, forced equalities are first substituted into the
// tuple (the semi-eager refinement).
func groundAll(ct *CTable, propagate bool) *CTable {
	out := &CTable{Arity: ct.Arity}
	for _, row := range ct.Rows {
		tv := Ground(row.Phi)
		if tv == logic.F {
			continue
		}
		t := row.T
		if propagate && tv == logic.U {
			if m := ForcedEqualities(row.Phi); len(m) > 0 {
				t = SubstituteTuple(t, m)
			}
		}
		out.Rows = append(out.Rows, CTuple{T: t, Phi: FromTV(tv)})
	}
	return out
}

// String renders the c-table deterministically for debugging.
func (c *CTable) String() string {
	s := fmt.Sprintf("ctable/%d {\n", c.Arity)
	for _, row := range c.Rows {
		s += "  ⟨" + row.T.String() + ", " + row.Phi.String() + "⟩\n"
	}
	return s + "}"
}
