// Package tpch provides the synthetic workload substrate for the paper's
// cited experiments: the TPC-H evaluation of the Q⁺ rewriting in [37]
// (1–4 % overhead) and the precision/recall study of [27]. Real TPC-H data
// and a commercial RDBMS are not available here, so the package generates
// a deterministic, seeded database over a five-table TPC-H-like schema
// (region, nation, customer, orders, lineitem), injects marked nulls into
// non-key attributes at a configurable rate ("dirtying"), and defines
// eight benchmark queries covering the query shapes the experiments rely
// on: key/foreign-key joins, NOT-IN/difference patterns, disjunctive
// selections, unions and range predicates — all inside the Figure 2
// translation fragment.
package tpch

import (
	"fmt"
	"math/rand"

	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// Config controls the generator. All sizes are tuple counts.
type Config struct {
	Customers int
	// OrdersPerCustomer is the mean; a fraction of customers have none
	// (the NOT-IN queries need a non-empty answer).
	OrdersPerCustomer int
	// ItemsPerOrder is the mean; a fraction of orders have no items.
	ItemsPerOrder int
	Nations       int
	Regions       int
	Seed          int64
}

// TinyConfig is sized so that the exact certain-answer oracle stays
// feasible (the oracle enumerates |Const(D)|^|Null(D)| worlds).
func TinyConfig() Config {
	return Config{Customers: 4, OrdersPerCustomer: 1, ItemsPerOrder: 1, Nations: 2, Regions: 1, Seed: 11}
}

// SmallConfig is a small but non-trivial instance for functional tests.
func SmallConfig() Config {
	return Config{Customers: 12, OrdersPerCustomer: 2, ItemsPerOrder: 2, Nations: 4, Regions: 2, Seed: 1}
}

// BenchConfig is sized for timing runs.
func BenchConfig() Config {
	return Config{Customers: 300, OrdersPerCustomer: 3, ItemsPerOrder: 3, Nations: 10, Regions: 5, Seed: 7}
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
var statuses = []string{"F", "O", "P"}

// Generate builds a complete (null-free) database.
func Generate(cfg Config) *relation.Database {
	r := rand.New(rand.NewSource(cfg.Seed))
	db := relation.NewDatabase()

	region := relation.New("region", "r_regionkey", "r_name")
	for i := 0; i < cfg.Regions; i++ {
		region.Add(value.Consts(fmt.Sprintf("R%d", i), fmt.Sprintf("REGION_%d", i)))
	}
	db.Add(region)

	nation := relation.New("nation", "n_nationkey", "n_name", "n_regionkey")
	for i := 0; i < cfg.Nations; i++ {
		nation.Add(value.Consts(
			fmt.Sprintf("N%d", i),
			fmt.Sprintf("NATION_%d", i),
			fmt.Sprintf("R%d", r.Intn(max(cfg.Regions, 1))),
		))
	}
	db.Add(nation)

	customer := relation.New("customer",
		"c_custkey", "c_name", "c_nationkey", "c_acctbal", "c_mktsegment")
	for i := 0; i < cfg.Customers; i++ {
		customer.Add(value.Consts(
			fmt.Sprintf("C%d", i),
			fmt.Sprintf("Customer#%d", i),
			fmt.Sprintf("N%d", r.Intn(max(cfg.Nations, 1))),
			fmt.Sprintf("%d", r.Intn(10000)),
			segments[r.Intn(len(segments))],
		))
	}
	db.Add(customer)

	orders := relation.New("orders", "o_orderkey", "o_custkey", "o_totalprice", "o_orderstatus")
	lineitem := relation.New("lineitem", "l_orderkey", "l_linenumber", "l_quantity", "l_extendedprice")
	okey := 0
	for i := 0; i < cfg.Customers; i++ {
		if r.Intn(5) == 0 {
			continue // customer without orders
		}
		n := 1 + r.Intn(max(2*cfg.OrdersPerCustomer-1, 1))
		for j := 0; j < n; j++ {
			ok := fmt.Sprintf("O%d", okey)
			okey++
			orders.Add(value.Consts(
				ok,
				fmt.Sprintf("C%d", i),
				fmt.Sprintf("%d", 100+r.Intn(99900)),
				statuses[r.Intn(len(statuses))],
			))
			if r.Intn(6) == 0 {
				continue // order without lineitems
			}
			items := 1 + r.Intn(max(2*cfg.ItemsPerOrder-1, 1))
			for l := 0; l < items; l++ {
				lineitem.Add(value.Consts(
					ok,
					fmt.Sprintf("%d", l+1),
					fmt.Sprintf("%d", 1+r.Intn(50)),
					fmt.Sprintf("%d", 10+r.Intn(9990)),
				))
			}
		}
	}
	db.Add(orders)
	db.Add(lineitem)
	return db
}

// nullableColumns lists the non-key attributes eligible for null injection,
// mirroring how incompleteness shows up in practice (keys stay intact).
var nullableColumns = map[string][]int{
	"nation":   {2},       // n_regionkey
	"customer": {2, 3, 4}, // c_nationkey, c_acctbal, c_mktsegment
	"orders":   {1, 2, 3}, // o_custkey, o_totalprice, o_orderstatus
	"lineitem": {2, 3},    // l_quantity, l_extendedprice
}

// Dirty replaces non-key attribute values with fresh marked nulls at the
// given rate. maxNulls caps the total injected nulls (0 = unlimited) so
// that exact oracles stay feasible on small instances. Deterministic for a
// fixed seed.
func Dirty(db *relation.Database, rate float64, maxNulls int, seed int64) *relation.Database {
	return DirtyColumns(db, nullableColumns, rate, maxNulls, seed)
}

// DirtyColumns is Dirty restricted to the given relation→columns map,
// useful for stressing exactly the attributes a query set is sensitive to.
// It may be applied repeatedly; fresh nulls never collide with existing
// ones anywhere in the source database.
func DirtyColumns(db *relation.Database, columns map[string][]int, rate float64, maxNulls int, seed int64) *relation.Database {
	r := rand.New(rand.NewSource(seed))
	// Allocate fresh null ids above everything in the source.
	next := uint64(1)
	for _, id := range db.NullIDs() {
		if id >= next {
			next = id + 1
		}
	}
	out := relation.NewDatabase()
	injected := 0
	for _, name := range db.Names() {
		src := db.Relation(name)
		dst := relation.New(src.Name(), src.Attrs()...)
		nullable := columns[name]
		src.Each(func(t value.Tuple, m int) {
			nt := t.Clone()
			for _, col := range nullable {
				if (maxNulls == 0 || injected < maxNulls) && r.Float64() < rate {
					nt[col] = value.Null(next)
					next++
					injected++
				}
			}
			dst.AddMult(nt, m)
		})
		out.Add(dst)
	}
	return out
}

// NamedQuery is a benchmark query with its description.
type NamedQuery struct {
	Name string
	Desc string
	Q    algebra.Expr
}

// Queries returns the eight benchmark queries. Column positions follow
// the schema order in Generate.
func Queries() []NamedQuery {
	customer := algebra.R("customer")
	orders := algebra.R("orders")
	lineitem := algebra.R("lineitem")
	nation := algebra.R("nation")

	c := value.Const
	return []NamedQuery{
		{
			Name: "Q1-customers-without-orders",
			Desc: "π_custkey(customer) − π_custkey(orders): the unpaid-orders pattern of Figure 1",
			Q: algebra.Minus(
				algebra.Proj(customer, 0),
				algebra.Proj(orders, 1),
			),
		},
		{
			Name: "Q2-orders-without-lineitems",
			Desc: "π_orderkey(orders) − π_orderkey(lineitem)",
			Q: algebra.Minus(
				algebra.Proj(orders, 0),
				algebra.Proj(lineitem, 0),
			),
		},
		{
			Name: "Q3-high-value-orders",
			Desc: "σ_{totalprice>50000}(orders), range predicate on a nullable column",
			Q:    algebra.Proj(algebra.Sel(orders, algebra.CGreaterC(2, c("50000"))), 0, 1),
		},
		{
			Name: "Q4-customer-order-join",
			Desc: "customers joined with their orders (key/foreign-key join)",
			Q: algebra.Proj(
				algebra.Join(customer, orders, algebra.CEq(0, 6)),
				0, 5,
			),
		},
		{
			Name: "Q5-disjunctive-selection",
			Desc: "σ_{status=F ∨ price<1000}(orders): the disjunction case where [37] saw optimizer trouble",
			Q: algebra.Proj(algebra.Sel(orders, algebra.COr(
				algebra.CEqC(3, c("F")),
				algebra.CLessC(2, c("1000")),
			)), 0),
		},
		{
			Name: "Q6-customers-without-big-orders",
			Desc: "π_custkey(customer) − π_custkey(σ_{price>80000}(orders))",
			Q: algebra.Minus(
				algebra.Proj(customer, 0),
				algebra.Proj(algebra.Sel(orders, algebra.CGreaterC(2, c("80000"))), 1),
			),
		},
		{
			Name: "Q7-segment-union",
			Desc: "automobile ∪ building customers",
			Q: algebra.Un(
				algebra.Proj(algebra.Sel(customer, algebra.CEqC(4, c("AUTOMOBILE"))), 0),
				algebra.Proj(algebra.Sel(customer, algebra.CEqC(4, c("BUILDING"))), 0),
			),
		},
		{
			Name: "Q8-nations-without-customers",
			Desc: "π_nationkey(nation) − π_nationkey(customer)",
			Q: algebra.Minus(
				algebra.Proj(nation, 0),
				algebra.Proj(customer, 2),
			),
		},
		{
			Name: "Q9-status-tautology",
			Desc: "σ_{status='F' ∨ status≠'F'}(orders): the introduction's third query — certain for every order, yet any tuple with a null status evades both SQL and Q⁺",
			Q: algebra.Proj(algebra.Sel(orders, algebra.COr(
				algebra.CEqC(3, c("F")),
				algebra.CNeqC(3, c("F")),
			)), 0),
		},
	}
}

// MultiJoinQueries returns the star- and chain-shaped multi-join queries:
// three to five relations with strongly skewed cardinalities (region ≪
// nation ≪ customer ≪ orders ≪ lineitem), written with the largest
// relation syntactically first — the adversarial order for a planner that
// joins left-deep as written, and the benchmark for cost-based join
// ordering. Column positions follow the schema order in Generate; the
// product layout of each query is noted inline.
func MultiJoinQueries() []NamedQuery {
	customer := algebra.R("customer")
	orders := algebra.R("orders")
	lineitem := algebra.R("lineitem")
	nation := algebra.R("nation")
	region := algebra.R("region")

	c := value.Const
	return []NamedQuery{
		{
			Name: "Q10-lineitem-order-customer-chain",
			Desc: "π_{c_name, l_extendedprice}(lineitem ⋈ orders ⋈ customer): three-way foreign-key chain, fact table first",
			// Layout: lineitem 0–3, orders 4–7, customer 8–12.
			Q: algebra.Proj(
				algebra.Sel(
					algebra.Times(algebra.Times(lineitem, orders), customer),
					algebra.CAnd(algebra.CEq(0, 4), algebra.CEq(5, 8))),
				9, 3),
		},
		{
			Name: "Q11-customer-geo-star",
			Desc: "π_{c_custkey, n_name}(σ_{r_name=REGION_0}(customer ⋈ nation ⋈ region)): selective dimension filter at the syntactic tail",
			// Layout: customer 0–4, nation 5–7, region 8–9.
			Q: algebra.Proj(
				algebra.Sel(
					algebra.Times(algebra.Times(customer, nation), region),
					algebra.CAnd(algebra.CEq(2, 5),
						algebra.CAnd(algebra.CEq(7, 8), algebra.CEqC(9, c("REGION_0"))))),
				0, 6),
		},
		{
			Name: "Q12-five-way-star",
			Desc: "π_{c_name, l_extendedprice}(σ_{o_orderstatus=F}(lineitem ⋈ orders ⋈ customer ⋈ nation ⋈ region)): the full five-table star",
			// Layout: lineitem 0–3, orders 4–7, customer 8–12, nation 13–15, region 16–17.
			Q: algebra.Proj(
				algebra.Sel(
					algebra.Times(algebra.Times(algebra.Times(algebra.Times(lineitem, orders), customer), nation), region),
					algebra.CAnd(algebra.CEq(0, 4),
						algebra.CAnd(algebra.CEq(5, 8),
							algebra.CAnd(algebra.CEq(10, 13),
								algebra.CAnd(algebra.CEq(15, 16), algebra.CEqC(7, c("F"))))))),
				9, 3),
		},
	}
}

// TotalTuples reports the database size (distinct tuples across relations).
func TotalTuples(db *relation.Database) int {
	total := 0
	for _, name := range db.Names() {
		total += db.Relation(name).Len()
	}
	return total
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
