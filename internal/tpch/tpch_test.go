package tpch

import (
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/translate"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SmallConfig())
	b := Generate(SmallConfig())
	if !a.Equal(b) {
		t.Fatalf("generation must be deterministic")
	}
	if !a.IsComplete() {
		t.Fatalf("generated database must be null-free")
	}
	for _, name := range []string{"region", "nation", "customer", "orders", "lineitem"} {
		if a.Relation(name) == nil {
			t.Fatalf("missing relation %s", name)
		}
	}
	if a.MustRelation("customer").Len() != SmallConfig().Customers {
		t.Fatalf("customer count = %d", a.MustRelation("customer").Len())
	}
}

func TestDirtyInjectsNulls(t *testing.T) {
	db := Generate(SmallConfig())
	dirty := Dirty(db, 0.2, 0, 99)
	if dirty.IsComplete() {
		t.Fatalf("dirtying at 20%% must inject nulls")
	}
	// Nulls never hit key columns.
	for _, tp := range dirty.MustRelation("customer").Tuples() {
		if tp[0].IsNull() || tp[1].IsNull() {
			t.Fatalf("key columns must stay intact: %v", tp)
		}
	}
	for _, tp := range dirty.MustRelation("orders").Tuples() {
		if tp[0].IsNull() {
			t.Fatalf("order key must stay intact: %v", tp)
		}
	}
	// Determinism.
	if !Dirty(db, 0.2, 0, 99).Equal(dirty) {
		t.Fatalf("dirtying must be deterministic")
	}
	// Cap respected.
	capped := Dirty(db, 1.0, 5, 3)
	if got := len(capped.NullIDs()); got != 5 {
		t.Fatalf("cap of 5 nulls, got %d", got)
	}
	// Rate 0: unchanged contents.
	if !Dirty(db, 0, 0, 1).Equal(db) {
		t.Fatalf("rate 0 must be the identity")
	}
}

func TestQueriesValidateAndTranslate(t *testing.T) {
	db := Generate(SmallConfig())
	for _, nq := range Queries() {
		if err := algebra.Validate(nq.Q, db); err != nil {
			t.Errorf("%s: %v", nq.Name, err)
			continue
		}
		if _, _, err := translate.Fig2b(nq.Q); err != nil {
			t.Errorf("%s: Fig2b: %v", nq.Name, err)
		}
		// Every query must run in both modes.
		algebra.SQL(db, nq.Q)
		algebra.Naive(db, nq.Q)
	}
}

func TestQ1FindsCustomersWithoutOrders(t *testing.T) {
	db := Generate(SmallConfig())
	q := Queries()[0].Q
	res := algebra.Naive(db, q)
	if res.Len() == 0 {
		t.Fatalf("the generator must leave some customers without orders")
	}
}

func TestDirtySQLvsCertainDiverge(t *testing.T) {
	// On an instance with a null order-owner, SQL evaluation and cert⊥
	// must disagree on a difference query — the Figure 1 phenomenon at
	// TPC-H shape. The tiny scale keeps the |Const(D)|^|Null(D)| oracle
	// feasible, and the null is placed where Q1 is sensitive to it.
	db := Generate(TinyConfig())
	orders := db.MustRelation("orders")
	first := orders.Tuples()[0]
	orders.SetMult(first, 0)
	dirtied := first.Clone()
	dirtied[1] = db.FreshNull() // o_custkey unknown
	orders.Add(dirtied)
	if db.IsComplete() {
		t.Fatalf("expected a null to be injected")
	}
	diverged := false
	for _, nq := range Queries() {
		sqlRes := algebra.SQL(db, nq.Q)
		cert, err := certain.WithNulls(db, nq.Q, certain.Options{MaxWorlds: 1 << 21})
		if err != nil {
			t.Fatalf("%s: %v", nq.Name, err)
		}
		if !sqlRes.EqualSet(cert) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatalf("expected SQL and certain answers to diverge somewhere")
	}
}

func TestTotalTuples(t *testing.T) {
	db := Generate(SmallConfig())
	if TotalTuples(db) < SmallConfig().Customers {
		t.Fatalf("TotalTuples too small: %d", TotalTuples(db))
	}
}
