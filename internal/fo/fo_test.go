package fo

import (
	"math/rand"
	"testing"

	"incdb/internal/gen"
	"incdb/internal/logic"
	"incdb/internal/relation"
	"incdb/internal/value"
)

func n(id uint64) value.Value { return value.Null(id) }

func smallDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.T(value.Const("1"), n(1)))
	db.Add(r)
	s := relation.New("S", "x")
	s.Add(value.Consts("1"))
	db.Add(s)
	return db
}

func TestFreeVarsAndSize(t *testing.T) {
	f := Exists{V: "y", F: And{Atom{Rel: "R", Args: []Term{X("x"), X("y")}}, Eq{X("x"), C("1")}}}
	fv := FreeVars(f)
	if len(fv) != 1 || fv[0] != "x" {
		t.Fatalf("FreeVars = %v", fv)
	}
	if Size(f) != 4 {
		t.Fatalf("Size = %d", Size(f))
	}
	if len(ConstsOf(f)) != 1 {
		t.Fatalf("ConstsOf = %v", ConstsOf(f))
	}
}

// The Section 5.1 example: with R(1,⊥), the Boolean semantics calls R(1,1)
// false — but (1,1) is not certainly absent, so bool lacks correctness
// guarantees; the unification semantics reports u.
func TestUnifVsBoolOnAtoms(t *testing.T) {
	db := smallDB()
	f := Atom{Rel: "R", Args: []Term{C("1"), C("1")}}
	if got := Eval(db, f, Bool(), Env{}); got != logic.F {
		t.Fatalf("bool: got %v, want f", got)
	}
	if got := Eval(db, f, UnifSem(), Env{}); got != logic.U {
		t.Fatalf("unif: got %v, want u", got)
	}
	// Exact member: t under both.
	g := Atom{Rel: "R", Args: []Term{C("1"), Lit{V: n(1)}}}
	if Eval(db, g, Bool(), Env{}) != logic.T || Eval(db, g, UnifSem(), Env{}) != logic.T {
		t.Fatalf("exact membership must be t")
	}
	// Non-unifiable: f under unif.
	h := Atom{Rel: "R", Args: []Term{C("2"), C("2")}}
	if got := Eval(db, h, UnifSem(), Env{}); got != logic.F {
		t.Fatalf("non-unifiable must be f: %v", got)
	}
}

func TestEqualitySemantics(t *testing.T) {
	db := smallDB()
	cases := []struct {
		a, b value.Value
		sem  Semantics
		want logic.TV
	}{
		{value.Const("1"), value.Const("1"), Bool(), logic.T},
		{value.Const("1"), value.Const("2"), Bool(), logic.F},
		{n(1), n(1), Bool(), logic.T},    // marked nulls are values under bool
		{n(1), n(2), Bool(), logic.F},    //
		{n(1), n(1), UnifSem(), logic.T}, // (13b): same null certainly equal
		{n(1), n(2), UnifSem(), logic.U},
		{n(1), value.Const("1"), UnifSem(), logic.U},
		{value.Const("1"), value.Const("2"), UnifSem(), logic.F},
		{n(1), n(1), SQLSem(), logic.U}, // SQL: null = null is unknown
		{n(1), value.Const("1"), SQLSem(), logic.U},
		{value.Const("1"), value.Const("1"), SQLSem(), logic.T},
	}
	for _, tc := range cases {
		f := Eq{Lit{tc.a}, Lit{tc.b}}
		if got := Eval(db, f, tc.sem, Env{}); got != tc.want {
			t.Errorf("%s under %s = %v, want %v", f, tc.sem.Name, got, tc.want)
		}
	}
}

func TestNullFreeRelationAtom(t *testing.T) {
	db := smallDB()
	// (14): any null among the arguments gives u.
	f := Atom{Rel: "R", Args: []Term{C("1"), Lit{V: n(1)}}}
	if got := Eval(db, f, NullFreeSem(), Env{}); got != logic.U {
		t.Fatalf("nullfree with null arg = %v, want u", got)
	}
	g := Atom{Rel: "S", Args: []Term{C("1")}}
	if got := Eval(db, g, NullFreeSem(), Env{}); got != logic.T {
		t.Fatalf("nullfree const member = %v, want t", got)
	}
}

func TestQuantifiersAndConnectives(t *testing.T) {
	db := smallDB()
	// ∃x S(x) — true.
	f := Exists{V: "x", F: Atom{Rel: "S", Args: []Term{X("x")}}}
	if Eval(db, f, Bool(), Env{}) != logic.T {
		t.Fatalf("∃x S(x) must be t")
	}
	// ∀x S(x) — false (adom has more elements).
	g := Forall{V: "x", F: Atom{Rel: "S", Args: []Term{X("x")}}}
	if Eval(db, g, Bool(), Env{}) != logic.F {
		t.Fatalf("∀x S(x) must be f")
	}
	// Under SQL semantics ∀x (S(x) ∨ ¬S(x)) can be u…
	taut := Forall{V: "x", F: Or{
		Eq{X("x"), C("1")},
		Not{Eq{X("x"), C("1")}},
	}}
	if got := Eval(db, taut, SQLSem(), Env{}); got != logic.U {
		t.Fatalf("three-valued tautology over nulls = %v, want u", got)
	}
	// …but the assertion operator collapses u to f.
	if got := Eval(db, Assert{taut}, SQLSem(), Env{}); got != logic.F {
		t.Fatalf("↑u must be f, got %v", got)
	}
}

func TestAnswersAndAnswersWith(t *testing.T) {
	db := smallDB()
	f := Atom{Rel: "S", Args: []Term{X("x")}}
	ans := Answers(db, f, []string{"x"}, UnifSem())
	if ans.Len() != 1 || !ans.Contains(value.Consts("1")) {
		t.Fatalf("Answers = %v", ans)
	}
	byTV := AnswersWith(db, f, []string{"x"}, UnifSem())
	// ⊥1 unifies with 1, so S(⊥1) is u; nothing else in adom.
	if byTV[1].Len() != 1 || byTV[2].Len() != 1 {
		t.Fatalf("AnswersWith: u=%v t=%v", byTV[1], byTV[2])
	}
}

func TestEvalUnboundVariablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Eval(smallDB(), Atom{Rel: "S", Args: []Term{X("zz")}}, Bool(), Env{})
}

// randFormula generates a random closed-under-freeVars formula over the
// gen.Schema() relations with at most the given free variables.
func randFormula(r *rand.Rand, depth int, free []string, allowAssert bool) Formula {
	mkTerm := func() Term {
		if len(free) > 0 && r.Intn(3) > 0 {
			return X(free[r.Intn(len(free))])
		}
		return C("c" + string(rune('0'+r.Intn(3))))
	}
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return Atom{Rel: "S", Args: []Term{mkTerm()}}
		case 1:
			return Atom{Rel: "R", Args: []Term{mkTerm(), mkTerm()}}
		case 2:
			return Atom{Rel: "T", Args: []Term{mkTerm(), mkTerm()}}
		default:
			return Eq{mkTerm(), mkTerm()}
		}
	}
	switch r.Intn(6) {
	case 0:
		return And{randFormula(r, depth-1, free, allowAssert), randFormula(r, depth-1, free, allowAssert)}
	case 1:
		return Or{randFormula(r, depth-1, free, allowAssert), randFormula(r, depth-1, free, allowAssert)}
	case 2:
		return Not{randFormula(r, depth-1, free, allowAssert)}
	case 3:
		v := "q" + string(rune('0'+depth))
		return Exists{V: v, F: randFormula(r, depth-1, append(append([]string{}, free...), v), allowAssert)}
	case 4:
		v := "q" + string(rune('0'+depth))
		return Forall{V: v, F: randFormula(r, depth-1, append(append([]string{}, free...), v), allowAssert)}
	default:
		if allowAssert {
			return Assert{randFormula(r, depth-1, free, allowAssert)}
		}
		return Not{randFormula(r, depth-1, free, allowAssert)}
	}
}

// Theorems 5.4 and 5.5 as a property test: for the SQL, unif, nullfree and
// bool semantics (with and without ↑), the translated Boolean formulas
// characterize the truth values exactly.
func TestTranslationCharacterizesTruthValues(t *testing.T) {
	r := rand.New(rand.NewSource(554))
	cfg := gen.DefaultConfig()
	cfg.MaxTuples = 3
	sems := []Semantics{SQLSem(), UnifSem(), NullFreeSem(), Bool()}
	for trial := 0; trial < 150; trial++ {
		db := gen.DB(r, cfg)
		f := randFormula(r, 2, []string{"x"}, true)
		sem := sems[trial%len(sems)]
		pos, neg := Translate(f, sem)
		for _, v := range db.ActiveDomain() {
			env := Env{"x": v}
			tv := Eval(db, f, sem, env)
			pb := Eval(db, pos, Bool(), env) == logic.T
			nb := Eval(db, neg, Bool(), env) == logic.T
			if (tv == logic.T) != pb {
				t.Fatalf("trial %d sem %s: φ=%s x=%v: ⟦φ⟧=%v but pos=%v\npos = %s",
					trial, sem.Name, f, v, tv, pb, pos)
			}
			if (tv == logic.F) != nb {
				t.Fatalf("trial %d sem %s: φ=%s x=%v: ⟦φ⟧=%v but neg=%v\nneg = %s",
					trial, sem.Name, f, v, tv, nb, neg)
			}
		}
	}
}

// The translation's ⇑ atoms expand to pure FO (no Unif nodes) with the
// same Boolean value everywhere.
func TestExpandUnifEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	cfg := gen.DefaultConfig()
	for trial := 0; trial < 60; trial++ {
		db := gen.DB(r, cfg)
		f := randFormula(r, 2, []string{"x"}, false)
		pos, neg := Translate(f, UnifSem())
		for _, g := range []Formula{pos, neg} {
			exp := ExpandUnif(g)
			if containsUnif(exp) {
				t.Fatalf("expansion left a ⇑ atom: %s", exp)
			}
			for _, v := range db.ActiveDomain() {
				env := Env{"x": v}
				if Eval(db, g, Bool(), env) != Eval(db, exp, Bool(), env) {
					t.Fatalf("trial %d: expansion differs at x=%v\nφ = %s\ng = %s", trial, v, f, g)
				}
			}
		}
	}
}

func containsUnif(f Formula) bool {
	switch f := f.(type) {
	case Unif:
		return true
	case And:
		return containsUnif(f.L) || containsUnif(f.R)
	case Or:
		return containsUnif(f.L) || containsUnif(f.R)
	case Not:
		return containsUnif(f.F)
	case Assert:
		return containsUnif(f.F)
	case Exists:
		return containsUnif(f.F)
	case Forall:
		return containsUnif(f.F)
	default:
		return false
	}
}

func TestExpandUnifDirect(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.T(n(1)))
	r.Add(value.T(n(2)))
	r.Add(value.Consts("a"))
	r.Add(value.Consts("b"))
	db.Add(r)
	// Check the ⇑ expansion on arity-2 tuples over all pairs from adom.
	u := Unif{L: []Term{X("p"), X("q")}, R: []Term{X("r"), X("s")}}
	exp := ExpandUnif(u)
	adom := db.ActiveDomain()
	for _, p := range adom {
		for _, q := range adom {
			for _, rr := range adom {
				for _, s := range adom {
					env := Env{"p": p, "q": q, "r": rr, "s": s}
					want := value.Unifiable(value.T(p, q), value.T(rr, s))
					got := Eval(db, exp, Bool(), env) == logic.T
					if got != want {
						t.Fatalf("expansion wrong at (%v,%v)⇑(%v,%v): got %v want %v", p, q, rr, s, got, want)
					}
				}
			}
		}
	}
}

// Corollary 5.2 as a property test: if ⟦φ⟧unif = t then ā is a certain
// answer; if f, then ā is certainly not an answer. Certainty is checked by
// enumerating valuations into Const(D) ∪ consts(φ) ∪ fresh.
func TestCorollary52CorrectnessGuarantees(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	cfg := gen.DefaultConfig()
	cfg.MaxTuples = 3
	for trial := 0; trial < 80; trial++ {
		db := gen.DB(r, cfg)
		f := randFormula(r, 2, []string{"x"}, false) // no ↑: FOSQL core
		ids := db.NullIDs()
		if len(ids) > 4 {
			continue
		}
		// Candidate range: db constants + formula constants + fresh.
		rng := db.Consts()
		rng = append(rng, ConstsOf(f)...)
		for i := 0; i < len(ids)+1; i++ {
			rng = append(rng, value.Const("fr"+string(rune('0'+i))))
		}
		for _, v := range db.ActiveDomain() {
			env := Env{"x": v}
			tv := Eval(db, f, UnifSem(), env)
			if tv == logic.U {
				continue
			}
			holdsEverywhere := true
			failsEverywhere := true
			var rec func(i int, val value.Valuation)
			rec = func(i int, val value.Valuation) {
				if !holdsEverywhere && !failsEverywhere {
					return
				}
				if i == len(ids) {
					world := db.Apply(val)
					got := Eval(world, f, Bool(), Env{"x": val.ApplyValue(v)})
					if got != logic.T {
						holdsEverywhere = false
					}
					if got != logic.F {
						failsEverywhere = false
					}
					return
				}
				for _, c := range rng {
					val.Set(ids[i], c)
					rec(i+1, val)
				}
			}
			rec(0, value.NewValuation())
			if tv == logic.T && !holdsEverywhere {
				t.Fatalf("trial %d: ⟦φ⟧unif=t but not certain\nφ = %s\nD = %v\nx = %v", trial, f, db, v)
			}
			if tv == logic.F && !failsEverywhere {
				t.Fatalf("trial %d: ⟦φ⟧unif=f but not certainly false\nφ = %s\nD = %v\nx = %v", trial, f, db, v)
			}
		}
	}
}

// The Section 5.1 closing example: R = S = {1}, T = {⊥}; the SQL query
// R − (S − T) returns {1}, yet 1 is almost certainly false. FO↑SQL
// reproduces the SQL answer; the unif semantics returns u instead.
func TestSQLAlmostCertainlyFalseExample(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.Consts("1"))
	db.Add(s)
	tt := relation.New("T", "a")
	tt.Add(value.T(n(1)))
	db.Add(tt)

	// φ(x) = R(x) ∧ ↑¬∃y (S(y) ∧ y=x ∧ ↑¬∃z (T(z) ∧ z=y))
	inner := Exists{V: "z", F: And{Atom{Rel: "T", Args: []Term{X("z")}}, Eq{X("z"), X("y")}}}
	mid := Exists{V: "y", F: And{
		Atom{Rel: "S", Args: []Term{X("y")}},
		And{Eq{X("y"), X("x")}, Assert{Not{inner}}},
	}}
	phi := And{Atom{Rel: "R", Args: []Term{X("x")}}, Assert{Not{mid}}}

	ans := Answers(db, phi, []string{"x"}, SQLSem())
	if !ans.Contains(value.Consts("1")) {
		t.Fatalf("FO↑SQL must return {1} like SQL does: %v", ans)
	}

	// Without ↑ (plain FOSQL in the unif semantics), 1 is not claimed true.
	phiNoAssert := And{Atom{Rel: "R", Args: []Term{X("x")}}, Not{Exists{V: "y", F: And{
		Atom{Rel: "S", Args: []Term{X("y")}},
		And{Eq{X("y"), X("x")}, Not{Exists{V: "z", F: And{Atom{Rel: "T", Args: []Term{X("z")}}, Eq{X("z"), X("y")}}}}},
	}}}}
	if got := Eval(db, phiNoAssert, UnifSem(), Env{"x": value.Const("1")}); got != logic.U {
		t.Fatalf("unif semantics must report u for 1, got %v", got)
	}

	// And the Theorem 5.5 translation of the ↑-query agrees with SQL.
	pos, _ := Translate(phi, SQLSem())
	bans := Answers(db, pos, []string{"x"}, Bool())
	if !bans.EqualSet(ans) {
		t.Fatalf("Boolean translation = %v, FO↑SQL = %v", bans, ans)
	}
}
