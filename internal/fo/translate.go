package fo

import (
	"fmt"
	"strconv"
)

// Translate compiles a many-valued formula into Boolean first-order logic,
// implementing Theorems 5.4 and 5.5: for every formula φ of FO(L3v) under
// any mixed semantics — including FO↑SQL with the assertion operator — it
// returns Boolean FO formulas (pos, neg) such that
//
//	⟦φ⟧_{D,ā} = t  ⟺  D ⊨bool pos(ā)
//	⟦φ⟧_{D,ā} = f  ⟺  D ⊨bool neg(ā)
//
// (and hence ⟦φ⟧ = u iff neither holds). The translation may introduce the
// derived unifiability predicate ⇑, itself expressible in pure FO via
// ExpandUnif. Fresh quantified variables are drawn from the reserved
// namespace "⇑N", which must not occur in the input.
func Translate(f Formula, sem Semantics) (pos, neg Formula) {
	tr := &translator{sem: sem}
	return tr.translate(f)
}

type translator struct {
	sem  Semantics
	next int
}

func (tr *translator) fresh() string {
	tr.next++
	return "⇑" + strconv.Itoa(tr.next)
}

func (tr *translator) translate(f Formula) (pos, neg Formula) {
	switch f := f.(type) {
	case TrueF:
		return TrueF{}, FalseF{}
	case FalseF:
		return FalseF{}, TrueF{}

	case Atom:
		switch tr.sem.relSem(f.Rel) {
		case SemBool:
			return f, Not{f}
		case SemUnif:
			// t: ā ∈ R. f: no tuple of R unifies with ā.
			ys := make([]Term, len(f.Args))
			names := make([]string, len(f.Args))
			for i := range f.Args {
				names[i] = tr.fresh()
				ys[i] = Var{Name: names[i]}
			}
			var body Formula = And{Atom{Rel: f.Rel, Args: ys}, Unif{L: f.Args, R: ys}}
			var ex Formula = body
			for i := len(names) - 1; i >= 0; i-- {
				ex = Exists{V: names[i], F: ex}
			}
			return f, Not{ex}
		case SemNullFree:
			guard := constGuard(f.Args)
			return And{f, guard}, And{Not{f}, guard}
		}
		panic("fo: unknown relation-atom semantics")

	case Eq:
		args := []Term{f.L, f.R}
		switch tr.sem.Eq {
		case SemBool:
			return f, Not{f}
		case SemUnif:
			// t: identical values; f: distinct constants.
			return f, And{Not{f}, constGuard(args)}
		case SemNullFree:
			guard := constGuard(args)
			return And{f, guard}, And{Not{f}, guard}
		}
		panic("fo: unknown equality semantics")

	case IsConst:
		return f, Not{f}
	case IsNull:
		return f, Not{f}
	case Unif:
		return f, Not{f}

	case And:
		lp, ln := tr.translate(f.L)
		rp, rn := tr.translate(f.R)
		return And{lp, rp}, Or{ln, rn}
	case Or:
		lp, ln := tr.translate(f.L)
		rp, rn := tr.translate(f.R)
		return Or{lp, rp}, And{ln, rn}
	case Not:
		p, n := tr.translate(f.F)
		return n, p
	case Assert:
		// ↑φ is t iff φ is t, and f otherwise.
		p, _ := tr.translate(f.F)
		return p, Not{p}

	case Exists:
		p, n := tr.translate(f.F)
		return Exists{V: f.V, F: p}, Forall{V: f.V, F: n}
	case Forall:
		p, n := tr.translate(f.F)
		return Forall{V: f.V, F: p}, Exists{V: f.V, F: n}
	}
	panic(fmt.Sprintf("fo: Translate: unknown formula %T", f))
}

func constGuard(ts []Term) Formula {
	var acc Formula = TrueF{}
	first := true
	for _, t := range ts {
		g := Formula(IsConst{T: t})
		if first {
			acc = g
			first = false
		} else {
			acc = And{acc, g}
		}
	}
	return acc
}

// ExpandUnif replaces every ⇑ atom with an equivalent pure-FO formula over
// equality and const tests, witnessing that the translation of Theorem 5.4
// stays inside Boolean FO. The expansion enumerates the equality types of
// the 2k terms (set partitions): under a fixed equality type, the
// equivalence closure of the pairing is determined, and unifiability
// reduces to "no closure class contains two distinct constant classes".
// The size is the 2k-th Bell number, so arities are capped at 4.
func ExpandUnif(f Formula) Formula {
	switch f := f.(type) {
	case Unif:
		return expandUnifAtom(f)
	case And:
		return And{ExpandUnif(f.L), ExpandUnif(f.R)}
	case Or:
		return Or{ExpandUnif(f.L), ExpandUnif(f.R)}
	case Not:
		return Not{ExpandUnif(f.F)}
	case Assert:
		return Assert{ExpandUnif(f.F)}
	case Exists:
		return Exists{V: f.V, F: ExpandUnif(f.F)}
	case Forall:
		return Forall{V: f.V, F: ExpandUnif(f.F)}
	default:
		return f
	}
}

func expandUnifAtom(u Unif) Formula {
	k := len(u.L)
	if k != len(u.R) {
		return FalseF{}
	}
	if k == 0 {
		return TrueF{}
	}
	if k > 4 {
		panic(fmt.Sprintf("fo: ExpandUnif: arity %d too large (Bell(%d) disjuncts)", k, 2*k))
	}
	slots := append(append([]Term{}, u.L...), u.R...)
	n := len(slots)

	var out Formula = FalseF{}
	haveDisjunct := false

	// Enumerate set partitions of {0..n-1} via restricted growth strings.
	rgs := make([]int, n)
	var rec func(i, maxBlock int)
	rec = func(i, maxBlock int) {
		if i == n {
			d := partitionDisjunct(slots, rgs, k)
			if d == nil {
				return
			}
			if !haveDisjunct {
				out = d
				haveDisjunct = true
			} else {
				out = Or{out, d}
			}
			return
		}
		for b := 0; b <= maxBlock+1 && b <= i; b++ {
			rgs[i] = b
			next := maxBlock
			if b > maxBlock {
				next = b
			}
			rec(i+1, next)
		}
	}
	rec(0, -1)
	if !haveDisjunct {
		return FalseF{}
	}
	return out
}

// partitionDisjunct builds the disjunct for one equality type, or nil when
// that type can never witness unifiability.
func partitionDisjunct(slots []Term, rgs []int, k int) Formula {
	n := len(slots)
	// Closure of the pairing i ~ i+k over the equality-type blocks.
	blockOf := rgs
	nblocks := 0
	for _, b := range blockOf {
		if b+1 > nblocks {
			nblocks = b + 1
		}
	}
	parent := make([]int, nblocks)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < k; i++ {
		a, b := find(blockOf[i]), find(blockOf[i+k])
		if a != b {
			parent[a] = b
		}
	}
	// Representative slot of each block.
	rep := make([]int, nblocks)
	for i := range rep {
		rep[i] = -1
	}
	for i, b := range blockOf {
		if rep[b] == -1 {
			rep[b] = i
		}
	}

	// Equality type formula: slots in the same block equal, different
	// blocks distinct.
	var conj []Formula
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if blockOf[i] == blockOf[j] {
				conj = append(conj, Eq{slots[i], slots[j]})
			} else {
				conj = append(conj, Not{Eq{slots[i], slots[j]}})
			}
		}
	}
	// Conflict-freeness: two distinct blocks merged by the closure cannot
	// both be constants (distinct blocks hold distinct values, and two
	// distinct constants cannot be unified).
	for b1 := 0; b1 < nblocks; b1++ {
		for b2 := b1 + 1; b2 < nblocks; b2++ {
			if find(b1) == find(b2) {
				conj = append(conj, Not{And{IsConst{slots[rep[b1]]}, IsConst{slots[rep[b2]]}}})
			}
		}
	}
	if len(conj) == 0 {
		return TrueF{}
	}
	acc := conj[0]
	for _, c := range conj[1:] {
		acc = And{acc, c}
	}
	return acc
}
