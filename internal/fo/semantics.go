package fo

import (
	"fmt"

	"incdb/internal/logic"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// AtomSem selects the semantics of atomic formulas.
type AtomSem int

const (
	// SemBool is the standard two-valued semantics (12): R(ā) is t iff
	// ā ∈ R, x=y is t iff the values are identical (nulls included).
	SemBool AtomSem = iota
	// SemUnif is the unification-based semantics (13a)/(13b): R(ā) is f
	// only when no tuple of R unifies with ā; x=y is f only for distinct
	// constants. It has correctness guarantees w.r.t. cert⊥
	// (Corollary 5.2).
	SemUnif
	// SemNullFree is the null-free semantics (14): atoms involving any
	// null are u. Applied to equality it is exactly SQL's comparison
	// behaviour.
	SemNullFree
)

func (s AtomSem) String() string {
	switch s {
	case SemBool:
		return "bool"
	case SemUnif:
		return "unif"
	case SemNullFree:
		return "nullfree"
	}
	return fmt.Sprintf("AtomSem(%d)", int(s))
}

// Semantics fixes the atom semantics per syntactic construct: one for
// relation atoms (optionally overridden per relation — a "mixed semantics"
// in the sense of Section 5.2) and one for equality atoms.
type Semantics struct {
	Name   string
	Rel    AtomSem
	Eq     AtomSem
	PerRel map[string]AtomSem
}

// Bool is the classical Boolean semantics: FO(L2v, ⟦·⟧bool).
func Bool() Semantics { return Semantics{Name: "bool", Rel: SemBool, Eq: SemBool} }

// UnifSem is the three-valued unification semantics of Corollary 5.2.
func UnifSem() Semantics { return Semantics{Name: "unif", Rel: SemUnif, Eq: SemUnif} }

// SQLSem is the mixed semantics (15) capturing SQL: Boolean relation
// atoms, null-free equality.
func SQLSem() Semantics { return Semantics{Name: "sql", Rel: SemBool, Eq: SemNullFree} }

// NullFreeSem applies the null-free semantics everywhere.
func NullFreeSem() Semantics { return Semantics{Name: "nullfree", Rel: SemNullFree, Eq: SemNullFree} }

func (s Semantics) relSem(rel string) AtomSem {
	if s.PerRel != nil {
		if sem, ok := s.PerRel[rel]; ok {
			return sem
		}
	}
	return s.Rel
}

// Env assigns values to free variables.
type Env map[string]value.Value

func (e Env) clone() Env {
	out := make(Env, len(e)+1)
	for k, v := range e {
		out[k] = v
	}
	return out
}

func termValue(t Term, env Env) value.Value {
	switch t := t.(type) {
	case Lit:
		return t.V
	case Var:
		v, ok := env[t.Name]
		if !ok {
			panic("fo: unbound variable " + t.Name)
		}
		return v
	}
	panic(fmt.Sprintf("fo: unknown term %T", t))
}

// Eval computes ⟦f⟧_{D, env} in Kleene's logic with the given atom
// semantics. Quantifiers range over the active domain of D. Boolean
// semantics never produces u, so FO(L2v, ⟦·⟧bool) is the classical FO.
func Eval(db *relation.Database, f Formula, sem Semantics, env Env) logic.TV {
	switch f := f.(type) {
	case TrueF:
		return logic.T
	case FalseF:
		return logic.F

	case Atom:
		tuple := make(value.Tuple, len(f.Args))
		for i, t := range f.Args {
			tuple[i] = termValue(t, env)
		}
		rel := db.Relation(f.Rel)
		if rel == nil {
			panic("fo: unknown relation " + f.Rel)
		}
		switch sem.relSem(f.Rel) {
		case SemBool:
			return logic.FromBool(rel.Contains(tuple))
		case SemUnif:
			if rel.Contains(tuple) {
				return logic.T
			}
			for _, rt := range rel.Tuples() {
				if value.Unifiable(tuple, rt) {
					return logic.U
				}
			}
			return logic.F
		case SemNullFree:
			if !tuple.AllConst() {
				return logic.U
			}
			return logic.FromBool(rel.Contains(tuple))
		}
		panic("fo: unknown relation-atom semantics")

	case Eq:
		a, b := termValue(f.L, env), termValue(f.R, env)
		switch sem.Eq {
		case SemBool:
			return logic.FromBool(a == b)
		case SemUnif:
			if a == b {
				return logic.T
			}
			if a.IsConst() && b.IsConst() {
				return logic.F
			}
			return logic.U
		case SemNullFree:
			if a.IsNull() || b.IsNull() {
				return logic.U
			}
			return logic.FromBool(a == b)
		}
		panic("fo: unknown equality semantics")

	case IsConst:
		return logic.FromBool(termValue(f.T, env).IsConst())
	case IsNull:
		return logic.FromBool(termValue(f.T, env).IsNull())

	case Unif:
		l := make(value.Tuple, len(f.L))
		r := make(value.Tuple, len(f.R))
		for i, t := range f.L {
			l[i] = termValue(t, env)
		}
		for i, t := range f.R {
			r[i] = termValue(t, env)
		}
		return logic.FromBool(value.Unifiable(l, r))

	case And:
		return logic.And(Eval(db, f.L, sem, env), Eval(db, f.R, sem, env))
	case Or:
		return logic.Or(Eval(db, f.L, sem, env), Eval(db, f.R, sem, env))
	case Not:
		return logic.Not(Eval(db, f.F, sem, env))
	case Assert:
		return logic.Assert(Eval(db, f.F, sem, env))

	case Exists:
		res := logic.F
		inner := env.clone()
		for _, v := range db.ActiveDomain() {
			inner[f.V] = v
			res = logic.Or(res, Eval(db, f.F, sem, inner))
			if res == logic.T {
				return logic.T
			}
		}
		return res
	case Forall:
		res := logic.T
		inner := env.clone()
		for _, v := range db.ActiveDomain() {
			inner[f.V] = v
			res = logic.And(res, Eval(db, f.F, sem, inner))
			if res == logic.F {
				return logic.F
			}
		}
		return res
	}
	panic(fmt.Sprintf("fo: Eval: unknown formula %T", f))
}

// Answers computes Qφ(D) = { ā | ⟦φ⟧_{D,ā} = t } over the given free
// variables (in the given order), as a relation.
func Answers(db *relation.Database, f Formula, freeVars []string, sem Semantics) *relation.Relation {
	out := relation.NewArity("Q", len(freeVars))
	adom := db.ActiveDomain()
	env := Env{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(freeVars) {
			if Eval(db, f, sem, env) == logic.T {
				tuple := make(value.Tuple, len(freeVars))
				for j, v := range freeVars {
					tuple[j] = env[v]
				}
				out.Add(tuple)
			}
			return
		}
		for _, v := range adom {
			env[freeVars[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// AnswersWith computes the tuples achieving each truth value, useful for
// inspecting approximation quality: index 0 = f, 1 = u, 2 = t.
func AnswersWith(db *relation.Database, f Formula, freeVars []string, sem Semantics) [3]*relation.Relation {
	var out [3]*relation.Relation
	for i := range out {
		out[i] = relation.NewArity("Q", len(freeVars))
	}
	adom := db.ActiveDomain()
	env := Env{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(freeVars) {
			tv := Eval(db, f, sem, env)
			tuple := make(value.Tuple, len(freeVars))
			for j, v := range freeVars {
				tuple[j] = env[v]
			}
			out[int(tv)].Add(tuple)
			return
		}
		for _, v := range adom {
			env[freeVars[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
