// Package fo implements the many-valued first-order logics of Section 5 of
// the paper: the language FO(L) over a propositional logic L, the atom
// semantics ⟦·⟧bool (12), ⟦·⟧unif (13a/13b) and ⟦·⟧nullfree (14), the mixed
// semantics ⟦·⟧sql (15) underlying SQL, the assertion operator ↑ that turns
// FOSQL into FO↑SQL, and the compilation into Boolean first-order logic of
// Theorems 5.4 and 5.5.
package fo

import (
	"fmt"
	"sort"
	"strings"

	"incdb/internal/value"
)

// Term is a variable or a constant.
type Term interface {
	fmt.Stringer
	isTerm()
}

// Var is a first-order variable.
type Var struct{ Name string }

// Lit is a constant term.
type Lit struct{ V value.Value }

func (Var) isTerm() {}
func (Lit) isTerm() {}

func (t Var) String() string { return t.Name }
func (t Lit) String() string { return "'" + t.V.String() + "'" }

// C builds a constant term from a string payload.
func C(s string) Term { return Lit{V: value.Const(s)} }

// X builds a variable term.
func X(name string) Term { return Var{Name: name} }

// Formula is a first-order formula over relational atoms, equality,
// const/null tests, the connectives ∧ ∨ ¬, the quantifiers ∃ ∀, and the
// assertion operator ↑.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Atom is R(t̄).
type Atom struct {
	Rel  string
	Args []Term
}

// Eq is t₁ = t₂.
type Eq struct{ L, R Term }

// IsConst is const(t); IsNull is null(t).
type IsConst struct{ T Term }
type IsNull struct{ T Term }

// Unif is the derived unifiability predicate x̄ ⇑ ȳ used by the Boolean-FO
// translation of the unification semantics. It is expressible in pure FO
// (see ExpandUnif) and evaluated natively for efficiency.
type Unif struct{ L, R []Term }

// And, Or, Not are the connectives; their propagation follows the logic of
// the chosen semantics (Kleene for the three-valued ones).
type And struct{ L, R Formula }
type Or struct{ L, R Formula }
type Not struct{ F Formula }

// Exists and Forall quantify over the active domain of the database.
type Exists struct {
	V string
	F Formula
}
type Forall struct {
	V string
	F Formula
}

// Assert is Bochvar's ↑: t maps to t, everything else to f. It is the
// propositional operator that captures SQL's keep-only-t behaviour
// (Section 5.2) and the one connective that breaks knowledge monotonicity.
type Assert struct{ F Formula }

// TrueF and FalseF are the constant formulas.
type TrueF struct{}
type FalseF struct{}

func (Atom) isFormula()    {}
func (Eq) isFormula()      {}
func (IsConst) isFormula() {}
func (IsNull) isFormula()  {}
func (Unif) isFormula()    {}
func (And) isFormula()     {}
func (Or) isFormula()      {}
func (Not) isFormula()     {}
func (Exists) isFormula()  {}
func (Forall) isFormula()  {}
func (Assert) isFormula()  {}
func (TrueF) isFormula()   {}
func (FalseF) isFormula()  {}

func terms(ts []Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ",")
}

func (f Atom) String() string    { return f.Rel + "(" + terms(f.Args) + ")" }
func (f Eq) String() string      { return f.L.String() + "=" + f.R.String() }
func (f IsConst) String() string { return "const(" + f.T.String() + ")" }
func (f IsNull) String() string  { return "null(" + f.T.String() + ")" }
func (f Unif) String() string    { return "(" + terms(f.L) + ")⇑(" + terms(f.R) + ")" }
func (f And) String() string     { return "(" + f.L.String() + " ∧ " + f.R.String() + ")" }
func (f Or) String() string      { return "(" + f.L.String() + " ∨ " + f.R.String() + ")" }
func (f Not) String() string     { return "¬" + f.F.String() }
func (f Exists) String() string  { return "∃" + f.V + " " + f.F.String() }
func (f Forall) String() string  { return "∀" + f.V + " " + f.F.String() }
func (f Assert) String() string  { return "↑" + f.F.String() }
func (TrueF) String() string     { return "⊤" }
func (FalseF) String() string    { return "⊥" }

// FreeVars returns the free variables of a formula, sorted.
func FreeVars(f Formula) []string {
	vars := map[string]bool{}
	collectFree(f, map[string]bool{}, vars)
	out := make([]string, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectFree(f Formula, bound, free map[string]bool) {
	addTerm := func(t Term) {
		if v, ok := t.(Var); ok && !bound[v.Name] {
			free[v.Name] = true
		}
	}
	switch f := f.(type) {
	case Atom:
		for _, t := range f.Args {
			addTerm(t)
		}
	case Eq:
		addTerm(f.L)
		addTerm(f.R)
	case IsConst:
		addTerm(f.T)
	case IsNull:
		addTerm(f.T)
	case Unif:
		for _, t := range f.L {
			addTerm(t)
		}
		for _, t := range f.R {
			addTerm(t)
		}
	case And:
		collectFree(f.L, bound, free)
		collectFree(f.R, bound, free)
	case Or:
		collectFree(f.L, bound, free)
		collectFree(f.R, bound, free)
	case Not:
		collectFree(f.F, bound, free)
	case Assert:
		collectFree(f.F, bound, free)
	case Exists:
		inner := copyBound(bound)
		inner[f.V] = true
		collectFree(f.F, inner, free)
	case Forall:
		inner := copyBound(bound)
		inner[f.V] = true
		collectFree(f.F, inner, free)
	case TrueF, FalseF:
	}
}

func copyBound(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m)+1)
	for k := range m {
		out[k] = true
	}
	return out
}

// ConstsOf collects the constants mentioned in the formula, deterministic.
func ConstsOf(f Formula) []value.Value {
	seen := map[value.Value]bool{}
	var walk func(Formula)
	addTerm := func(t Term) {
		if l, ok := t.(Lit); ok {
			seen[l.V] = true
		}
	}
	walk = func(f Formula) {
		switch f := f.(type) {
		case Atom:
			for _, t := range f.Args {
				addTerm(t)
			}
		case Eq:
			addTerm(f.L)
			addTerm(f.R)
		case IsConst:
			addTerm(f.T)
		case IsNull:
			addTerm(f.T)
		case Unif:
			for _, t := range f.L {
				addTerm(t)
			}
			for _, t := range f.R {
				addTerm(t)
			}
		case And:
			walk(f.L)
			walk(f.R)
		case Or:
			walk(f.L)
			walk(f.R)
		case Not:
			walk(f.F)
		case Assert:
			walk(f.F)
		case Exists:
			walk(f.F)
		case Forall:
			walk(f.F)
		}
	}
	walk(f)
	out := make([]value.Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return value.OrderLess(out[i], out[j]) })
	return out
}

// Size counts formula nodes, used to report translation blow-up.
func Size(f Formula) int {
	switch f := f.(type) {
	case Atom, Eq, IsConst, IsNull, Unif, TrueF, FalseF:
		return 1
	case And:
		return 1 + Size(f.L) + Size(f.R)
	case Or:
		return 1 + Size(f.L) + Size(f.R)
	case Not:
		return 1 + Size(f.F)
	case Assert:
		return 1 + Size(f.F)
	case Exists:
		return 1 + Size(f.F)
	case Forall:
		return 1 + Size(f.F)
	}
	panic(fmt.Sprintf("fo: Size: unknown formula %T", f))
}
