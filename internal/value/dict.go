package value

import (
	"sync"
	"sync/atomic"
)

// The constant dictionary: a process-wide interner mapping constant payloads
// to dense uint32 ids and back. Interning makes Value a two-word struct with
// O(1) equality (id comparison instead of string comparison), lets tuples
// hash by mixing fixed-size words, and lets Compare read the numeric parse
// of a payload computed once at intern time instead of calling
// strconv.ParseInt per comparison.
//
// The dictionary is append-only and concurrency-safe: the forward direction
// (payload → id) is a sync.Map, so steady-state interning is a lock-free
// read; the reverse direction (id → entry) is an RCU-published slice — the
// writer extends the backing array under a mutex and atomically publishes a
// new header, readers index their loaded snapshot without synchronization.
// Ids a reader can hold always lie below the length of any header published
// after the id was minted, so a stale snapshot is never too short.
//
// Retention contract: the dictionary is append-only for the life of the
// process — a payload, once interned, is never evicted, so memory grows
// with the number of *distinct* constant payloads ever created rather than
// with live Values. That is the right trade for this engine (experiments
// run bounded instances per process and re-use payloads heavily across
// worlds); a server embedding the package with unbounded distinct inputs
// should scope payload generation or recycle the process.

// entry is one interned constant: the payload plus its numeric parse,
// computed once so that comparisons never re-parse.
type entry struct {
	str   string
	num   int64
	isNum bool
}

var dict = struct {
	mu      sync.Mutex
	ids     sync.Map // string → uint32
	entries atomic.Pointer[[]entry]
}{}

func init() {
	// Id 0 is the empty payload, making the zero Value the constant "".
	entries := make([]entry, 1, 64)
	entries[0] = entry{}
	dict.entries.Store(&entries)
	dict.ids.Store("", uint32(0))
}

// intern returns the dense id of payload s, assigning the next id on first
// sight.
func intern(s string) uint32 {
	if id, ok := dict.ids.Load(s); ok {
		return id.(uint32)
	}
	dict.mu.Lock()
	defer dict.mu.Unlock()
	if id, ok := dict.ids.Load(s); ok {
		return id.(uint32)
	}
	cur := *dict.entries.Load()
	n := len(cur)
	if uint64(n) > uint64(^uint32(0)) {
		// Ids are dense uint32; wrapping would silently alias two distinct
		// payloads. Unreachable in practice (the entries alone would need
		// >128 GiB first), but corruption must never be silent.
		panic("value: constant dictionary exhausted (2^32 distinct payloads)")
	}
	var next []entry
	if n < cap(cur) {
		// Readers hold headers with len ≤ n and never index position n, so
		// extending in place over spare capacity is safe; the atomic publish
		// below orders the element write before any reader's access.
		next = cur[:n+1]
	} else {
		next = make([]entry, n+1, 2*(n+1))
		copy(next, cur)
	}
	num, isNum := numeric(s)
	next[n] = entry{str: s, num: num, isNum: isNum}
	dict.entries.Store(&next)
	dict.ids.Store(s, uint32(n))
	return uint32(n)
}

// lookup returns the entry for an interned id. The id was minted by intern,
// so it is always in range for the current snapshot.
func lookup(id uint64) *entry {
	es := *dict.entries.Load()
	return &es[id]
}

// DictLen reports the number of interned constant payloads (at least 1: the
// empty payload is always present). Exposed for stats and tests.
func DictLen() int {
	return len(*dict.entries.Load())
}
