package value

// TupleMap is a hash-native map keyed by tuple content: buckets are indexed
// by Tuple.Hash and membership inside a bucket is confirmed with
// Tuple.Equal, so lookups never materialize the string Key() encoding. It
// replaces the map[string]V-keyed-by-Key() pattern in the FD/IND checks,
// the chase, and the per-query dedup scratch maps. The zero TupleMap is
// ready to use.
type TupleMap[V any] struct {
	buckets map[uint64][]tupleMapEntry[V]
	n       int
}

type tupleMapEntry[V any] struct {
	t Tuple
	v V
}

// Len returns the number of distinct keys.
func (m *TupleMap[V]) Len() int { return m.n }

// Get returns the value stored under t and whether t is present.
func (m *TupleMap[V]) Get(t Tuple) (V, bool) {
	for _, e := range m.buckets[t.Hash()] {
		if e.t.Equal(t) {
			return e.v, true
		}
	}
	var zero V
	return zero, false
}

// Has reports whether t is present.
func (m *TupleMap[V]) Has(t Tuple) bool {
	_, ok := m.Get(t)
	return ok
}

// Put stores v under t, replacing any previous binding. The map retains t;
// callers that mutate tuples in place must pass a private copy.
func (m *TupleMap[V]) Put(t Tuple, v V) {
	if m.buckets == nil {
		m.buckets = map[uint64][]tupleMapEntry[V]{}
	}
	h := t.Hash()
	bucket := m.buckets[h]
	for i, e := range bucket {
		if e.t.Equal(t) {
			bucket[i].v = v
			return
		}
	}
	m.buckets[h] = append(bucket, tupleMapEntry[V]{t: t, v: v})
	m.n++
}

// Each calls f on every entry, in unspecified order.
func (m *TupleMap[V]) Each(f func(t Tuple, v V)) {
	for _, bucket := range m.buckets {
		for _, e := range bucket {
			f(e.t, e.v)
		}
	}
}
