// Package value defines the elements that populate incomplete databases:
// constants from the countably infinite set Const and marked nulls from the
// set Null (written ⊥₁, ⊥₂, …), together with tuples over them, valuations
// (maps from nulls to constants), and tuple unification.
//
// This is the data model of Section 2 of Console, Guagliardo, Libkin and
// Toussaint, "Coping with Incomplete Data: Recent Advances" (PODS 2020).
//
// Representation: constant payloads are interned in a process-wide
// dictionary (see dict.go), so a Value is a compact {kind, id} pair —
// equality is an integer comparison, hashing mixes fixed-size words, and
// numeric payloads are parsed once at intern time rather than once per
// comparison.
package value

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"sort"
	"strconv"
	"strings"
)

// Value is either a constant or a marked null. The zero Value is the
// constant with the empty string payload. Value is comparable and can be
// used as a map key; identical marked nulls compare equal, which is what
// makes them "marked" (repeatable) rather than Codd nulls. Constants with
// equal payloads carry equal dictionary ids, so == on Value is exact value
// equality in O(1) regardless of payload length.
type Value struct {
	id   uint64 // null identifier (null), or dictionary id (constant)
	null bool
}

// Const returns the constant value with the given payload.
func Const(s string) Value { return Value{id: uint64(intern(s))} }

// Int returns the constant value holding the decimal representation of i.
// It is a convenience for numeric test data; constants are untyped strings,
// but Compare orders all-digit payloads numerically.
func Int(i int) Value { return Const(strconv.Itoa(i)) }

// Null returns the marked null ⊥id.
func Null(id uint64) Value { return Value{id: id, null: true} }

// IsNull reports whether v is a marked null.
func (v Value) IsNull() bool { return v.null }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return !v.null }

// ConstVal returns the constant payload. It panics if v is a null, since
// using a null where a constant is required is always a programming error
// in this codebase.
func (v Value) ConstVal() string {
	if v.null {
		panic("value: ConstVal called on null " + v.String())
	}
	return lookup(v.id).str
}

// NullID returns the identifier of a marked null. It panics on constants.
func (v Value) NullID() uint64 {
	if !v.null {
		panic("value: NullID called on constant " + v.String())
	}
	return v.id
}

// String renders constants verbatim and nulls as ⊥id.
func (v Value) String() string {
	if v.null {
		return "⊥" + strconv.FormatUint(v.id, 10)
	}
	return lookup(v.id).str
}

// Key returns an injective encoding of v, suitable as a map key component.
// Constants and nulls can never collide. Key allocates; it is kept for
// display and for tests that cross-check the hash-native paths — hot paths
// use == on Value or Tuple.Hash/Equal instead.
func (v Value) Key() string {
	if v.null {
		return "\x00" + strconv.FormatUint(v.id, 10)
	}
	return "\x01" + lookup(v.id).str
}

// Num returns the pre-parsed numeric payload of a constant and whether the
// payload is a decimal integer. It panics on nulls.
func (v Value) Num() (int64, bool) {
	if v.null {
		panic("value: Num called on null " + v.String())
	}
	e := lookup(v.id)
	return e.num, e.isNum
}

// numeric reports whether s is a non-empty decimal integer (optionally
// signed). Such constants compare numerically in Compare, which gives the
// typed-attribute extension discussed in Section 6 of the paper. The parse
// runs once per distinct payload, at intern time.
func numeric(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Compare defines the *semantic* order on values, the one the < predicate
// of queries evaluates through: constants precede nulls; numeric constants
// order numerically among themselves and precede non-numeric constants;
// non-numeric constants order lexicographically; nulls order by
// identifier. It returns -1, 0 or 1. Distinct spellings of the same number
// ("05" and "5") compare 0 here — they are the same number, so neither is
// < the other; use OrderCompare where a strict total order on distinct
// values is required (sorting, deterministic iteration).
func Compare(a, b Value) int {
	switch {
	case !a.null && b.null:
		return -1
	case a.null && !b.null:
		return 1
	case a.null && b.null:
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	}
	if a.id == b.id {
		return 0
	}
	ea, eb := lookup(a.id), lookup(b.id)
	switch {
	case ea.isNum && !eb.isNum:
		return -1
	case !ea.isNum && eb.isNum:
		return 1
	case ea.isNum && eb.isNum:
		switch {
		case ea.num < eb.num:
			return -1
		case ea.num > eb.num:
			return 1
		}
		return 0
	}
	return strings.Compare(ea.str, eb.str)
}

// Less reports Compare(a, b) < 0.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// OrderCompare is the strict total order used for sorting and
// deterministic iteration: Compare, refined so that *distinct* values
// never tie. Distinct spellings of the same number ("1", "01", "+1") are
// distinct interned constants; breaking their Compare tie
// lexicographically keeps sorted snapshots and Each iterations stable
// across runs instead of leaving such rows at the mercy of map iteration
// order. Query semantics (< predicates) must keep using Compare/Less.
func OrderCompare(a, b Value) int {
	if c := Compare(a, b); c != 0 {
		return c
	}
	if a == b || a.null {
		return 0
	}
	return strings.Compare(lookup(a.id).str, lookup(b.id).str)
}

// OrderLess reports OrderCompare(a, b) < 0.
func OrderLess(a, b Value) bool { return OrderCompare(a, b) < 0 }

// Tuple is a finite sequence of values, the rows of relations.
type Tuple []Value

// T builds a tuple from its arguments.
func T(vs ...Value) Tuple { return Tuple(vs) }

// Consts builds a tuple of constants from string payloads.
func Consts(ss ...string) Tuple {
	t := make(Tuple, len(ss))
	for i, s := range ss {
		t[i] = Const(s)
	}
	return t
}

// Key returns an injective encoding of the tuple. Like Value.Key it is kept
// for display and cross-checking tests; storage and joins key on
// Hash/Equal.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		k := v.Key()
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String()
}

// tupleSeed seeds Tuple.Hash; one random seed per process, so hashes are
// comparable across all relations and maps of a run but not across runs
// (which also keeps hash-flooding inputs from being portable).
var tupleSeed = maphash.MakeSeed()

// Hash returns a 64-bit hash of the tuple's content, consistent with Equal:
// equal tuples hash equal. Constants hash their dictionary id and nulls
// their identifier under distinct tags, so a constant and a null never
// contribute the same words. Collisions between distinct tuples are
// possible (callers confirm with Equal) but cryptographically unlikely.
func (t Tuple) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(tupleSeed)
	for _, v := range t {
		hashValueInto(&h, v)
	}
	return h.Sum64()
}

// hashValueInto writes v's tagged 9-byte encoding into h — the single
// definition of the encoding shared by Value.Hash and Tuple.Hash, so the
// two can never drift apart.
func hashValueInto(h *maphash.Hash, v Value) {
	var b [9]byte
	if v.null {
		b[0] = 0xff
	} else {
		b[0] = 0x01
	}
	binary.LittleEndian.PutUint64(b[1:], v.id)
	h.Write(b[:])
}

// Hash returns a 64-bit content hash of v under the same per-process seed
// as Tuple.Hash, consistent with ==: equal values hash equal, and constants
// and nulls are tagged apart.
func (v Value) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(tupleSeed)
	hashValueInto(&h, v)
	return h.Sum64()
}

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of t that shares no storage with it.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// Concat returns the concatenation t·u as a fresh tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	r := make(Tuple, 0, len(t)+len(u))
	r = append(r, t...)
	r = append(r, u...)
	return r
}

// Project returns the tuple (t[cols[0]], …, t[cols[k-1]]).
func (t Tuple) Project(cols []int) Tuple {
	r := make(Tuple, len(cols))
	for i, c := range cols {
		r[i] = t[c]
	}
	return r
}

// HasNull reports whether any component of t is a null.
func (t Tuple) HasNull() bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// AllConst reports whether every component of t is a constant; this is the
// Const(ā) predicate used by the null-free atom semantics (14).
func (t Tuple) AllConst() bool { return !t.HasNull() }

// Nulls returns the set of null identifiers occurring in t.
func (t Tuple) Nulls() map[uint64]bool {
	m := map[uint64]bool{}
	for _, v := range t {
		if v.IsNull() {
			m[v.id] = true
		}
	}
	return m
}

// String renders the tuple as (v1, …, vk).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Compare orders tuples lexicographically by OrderCompare on components,
// with shorter tuples first on common-prefix ties. It is an *ordering*
// comparator (strict total order on distinct tuples — sorted snapshots and
// SortTuples depend on that); the semantic value order is value.Compare.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := OrderCompare(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// SortTuples sorts ts in place by Tuple.Compare.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// Valuation maps null identifiers to constants, as in Section 2: a
// valuation v : Null(D) → Const. Applying it replaces every null it covers;
// nulls outside its domain are left untouched (useful for partial
// substitutions during chasing).
type Valuation map[uint64]Value

// NewValuation returns an empty valuation.
func NewValuation() Valuation { return Valuation{} }

// Set binds ⊥id to the constant c. It panics if c is not a constant,
// because valuations map nulls to Const by definition.
func (v Valuation) Set(id uint64, c Value) {
	if c.IsNull() {
		panic("value: valuation target must be a constant, got " + c.String())
	}
	v[id] = c
}

// Apply replaces every null bound by v in the tuple; unbound nulls and
// constants pass through.
func (v Valuation) Apply(t Tuple) Tuple {
	return v.ApplyInto(make(Tuple, len(t)), t)
}

// ApplyInto is Apply writing into dst, which must have len(t); it returns
// dst. Workers that check one tuple per world reuse a single buffer this
// way instead of allocating per world.
func (v Valuation) ApplyInto(dst, t Tuple) Tuple {
	if len(dst) != len(t) {
		panic(fmt.Sprintf("value: ApplyInto buffer len %d vs tuple len %d", len(dst), len(t)))
	}
	for i, x := range t {
		if x.IsNull() {
			if c, ok := v[x.id]; ok {
				dst[i] = c
				continue
			}
		}
		dst[i] = x
	}
	return dst
}

// ApplyValue replaces x if it is a bound null, else returns x unchanged.
func (v Valuation) ApplyValue(x Value) Value {
	if x.IsNull() {
		if c, ok := v[x.id]; ok {
			return c
		}
	}
	return x
}

// Clone returns a copy of the valuation.
func (v Valuation) Clone() Valuation {
	w := make(Valuation, len(v))
	for k, c := range v {
		w[k] = c
	}
	return w
}

// String renders the valuation deterministically, e.g. {⊥1↦a, ⊥2↦b}.
func (v Valuation) String() string {
	ids := make([]uint64, 0, len(v))
	for id := range v {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("⊥%d↦%s", id, v[id].String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
