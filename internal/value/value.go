// Package value defines the elements that populate incomplete databases:
// constants from the countably infinite set Const and marked nulls from the
// set Null (written ⊥₁, ⊥₂, …), together with tuples over them, valuations
// (maps from nulls to constants), and tuple unification.
//
// This is the data model of Section 2 of Console, Guagliardo, Libkin and
// Toussaint, "Coping with Incomplete Data: Recent Advances" (PODS 2020).
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is either a constant or a marked null. The zero Value is the
// constant with the empty string payload. Value is comparable and can be
// used as a map key; identical marked nulls compare equal, which is what
// makes them "marked" (repeatable) rather than Codd nulls.
type Value struct {
	id   uint64 // null identifier; meaningful only when null is true
	str  string // constant payload; meaningful only when null is false
	null bool
}

// Const returns the constant value with the given payload.
func Const(s string) Value { return Value{str: s} }

// Int returns the constant value holding the decimal representation of i.
// It is a convenience for numeric test data; constants are untyped strings,
// but Compare orders all-digit payloads numerically.
func Int(i int) Value { return Const(strconv.Itoa(i)) }

// Null returns the marked null ⊥id.
func Null(id uint64) Value { return Value{id: id, null: true} }

// IsNull reports whether v is a marked null.
func (v Value) IsNull() bool { return v.null }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return !v.null }

// ConstVal returns the constant payload. It panics if v is a null, since
// using a null where a constant is required is always a programming error
// in this codebase.
func (v Value) ConstVal() string {
	if v.null {
		panic("value: ConstVal called on null " + v.String())
	}
	return v.str
}

// NullID returns the identifier of a marked null. It panics on constants.
func (v Value) NullID() uint64 {
	if !v.null {
		panic("value: NullID called on constant " + v.String())
	}
	return v.id
}

// String renders constants verbatim and nulls as ⊥id.
func (v Value) String() string {
	if v.null {
		return "⊥" + strconv.FormatUint(v.id, 10)
	}
	return v.str
}

// Key returns an injective encoding of v, suitable as a map key component.
// Constants and nulls can never collide.
func (v Value) Key() string {
	if v.null {
		return "\x00" + strconv.FormatUint(v.id, 10)
	}
	return "\x01" + v.str
}

// numeric reports whether s is a non-empty decimal integer (optionally
// signed). Such constants compare numerically in Compare, which gives the
// typed-attribute extension discussed in Section 6 of the paper.
func numeric(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Compare defines a deterministic total order on values: constants precede
// nulls; numeric constants order numerically among themselves and precede
// non-numeric constants; non-numeric constants order lexicographically;
// nulls order by identifier. It returns -1, 0 or 1.
func Compare(a, b Value) int {
	switch {
	case !a.null && b.null:
		return -1
	case a.null && !b.null:
		return 1
	case a.null && b.null:
		switch {
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	}
	an, aok := numeric(a.str)
	bn, bok := numeric(b.str)
	switch {
	case aok && !bok:
		return -1
	case !aok && bok:
		return 1
	case aok && bok:
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		}
		return 0
	}
	return strings.Compare(a.str, b.str)
}

// Less reports Compare(a, b) < 0.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Tuple is a finite sequence of values, the rows of relations.
type Tuple []Value

// T builds a tuple from its arguments.
func T(vs ...Value) Tuple { return Tuple(vs) }

// Consts builds a tuple of constants from string payloads.
func Consts(ss ...string) Tuple {
	t := make(Tuple, len(ss))
	for i, s := range ss {
		t[i] = Const(s)
	}
	return t
}

// Key returns an injective encoding of the tuple.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		k := v.Key()
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String()
}

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of t that shares no storage with it.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// Concat returns the concatenation t·u as a fresh tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	r := make(Tuple, 0, len(t)+len(u))
	r = append(r, t...)
	r = append(r, u...)
	return r
}

// Project returns the tuple (t[cols[0]], …, t[cols[k-1]]).
func (t Tuple) Project(cols []int) Tuple {
	r := make(Tuple, len(cols))
	for i, c := range cols {
		r[i] = t[c]
	}
	return r
}

// HasNull reports whether any component of t is a null.
func (t Tuple) HasNull() bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// AllConst reports whether every component of t is a constant; this is the
// Const(ā) predicate used by the null-free atom semantics (14).
func (t Tuple) AllConst() bool { return !t.HasNull() }

// Nulls returns the set of null identifiers occurring in t.
func (t Tuple) Nulls() map[uint64]bool {
	m := map[uint64]bool{}
	for _, v := range t {
		if v.IsNull() {
			m[v.id] = true
		}
	}
	return m
}

// String renders the tuple as (v1, …, vk).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Compare orders tuples lexicographically by Compare on components, with
// shorter tuples first on common-prefix ties.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := Compare(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// SortTuples sorts ts in place by Tuple.Compare.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// Valuation maps null identifiers to constants, as in Section 2: a
// valuation v : Null(D) → Const. Applying it replaces every null it covers;
// nulls outside its domain are left untouched (useful for partial
// substitutions during chasing).
type Valuation map[uint64]Value

// NewValuation returns an empty valuation.
func NewValuation() Valuation { return Valuation{} }

// Set binds ⊥id to the constant c. It panics if c is not a constant,
// because valuations map nulls to Const by definition.
func (v Valuation) Set(id uint64, c Value) {
	if c.IsNull() {
		panic("value: valuation target must be a constant, got " + c.String())
	}
	v[id] = c
}

// Apply replaces every null bound by v in the tuple; unbound nulls and
// constants pass through.
func (v Valuation) Apply(t Tuple) Tuple {
	r := make(Tuple, len(t))
	for i, x := range t {
		if x.IsNull() {
			if c, ok := v[x.id]; ok {
				r[i] = c
				continue
			}
		}
		r[i] = x
	}
	return r
}

// ApplyValue replaces x if it is a bound null, else returns x unchanged.
func (v Valuation) ApplyValue(x Value) Value {
	if x.IsNull() {
		if c, ok := v[x.id]; ok {
			return c
		}
	}
	return x
}

// Clone returns a copy of the valuation.
func (v Valuation) Clone() Valuation {
	w := make(Valuation, len(v))
	for k, c := range v {
		w[k] = c
	}
	return w
}

// String renders the valuation deterministically, e.g. {⊥1↦a, ⊥2↦b}.
func (v Valuation) String() string {
	ids := make([]uint64, 0, len(v))
	for id := range v {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("⊥%d↦%s", id, v[id].String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
