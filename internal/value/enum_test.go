package value

import (
	"strings"
	"testing"
)

func enumToStrings(ids []uint64, rng []Value, lo, hi int) []string {
	var out []string
	EnumValuations(ids, rng, lo, hi, func(v Valuation) bool {
		out = append(out, v.String())
		return true
	})
	return out
}

func TestEnumSize(t *testing.T) {
	rng := []Value{Const("a"), Const("b"), Const("c")}
	if got := EnumSize(nil, rng); got != 1 {
		t.Errorf("EnumSize(0 ids) = %d, want 1", got)
	}
	if got := EnumSize([]uint64{1, 2}, rng); got != 9 {
		t.Errorf("EnumSize(2 ids, 3 consts) = %d, want 9", got)
	}
	many := make([]uint64, 64)
	for i := range many {
		many[i] = uint64(i + 1)
	}
	if got := EnumSize(many, rng); got != -1 {
		t.Errorf("EnumSize(3^64) = %d, want -1 (overflow)", got)
	}
}

func TestEnumMatchesNestedLoops(t *testing.T) {
	ids := []uint64{3, 1, 7}
	rng := []Value{Const("a"), Const("b")}
	var want []string
	v := NewValuation()
	for _, c0 := range rng {
		for _, c1 := range rng {
			for _, c2 := range rng {
				v.Set(ids[0], c0)
				v.Set(ids[1], c1)
				v.Set(ids[2], c2)
				want = append(want, v.String())
			}
		}
	}
	got := enumToStrings(ids, rng, 0, 8)
	if len(got) != len(want) {
		t.Fatalf("enumerated %d valuations, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("valuation %d: %s, want %s", i, got[i], want[i])
		}
	}
}

func TestEnumRangeConcatenationEqualsFullEnumeration(t *testing.T) {
	ids := []uint64{1, 2}
	rng := []Value{Const("x"), Const("y"), Const("z")}
	full := enumToStrings(ids, rng, 0, 9)
	for _, cut := range [][]int{{0, 9}, {0, 4, 9}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {0, 3, 3, 9}} {
		var pieces []string
		for i := 0; i+1 < len(cut); i++ {
			pieces = append(pieces, enumToStrings(ids, rng, cut[i], cut[i+1])...)
		}
		if strings.Join(pieces, ";") != strings.Join(full, ";") {
			t.Errorf("cuts %v: %v != full %v", cut, pieces, full)
		}
	}
}

func TestEnumEmptyIDs(t *testing.T) {
	if got := enumToStrings(nil, []Value{Const("a")}, 0, 1); len(got) != 1 || got[0] != "{}" {
		t.Errorf("empty ids: %v, want one empty valuation", got)
	}
	if got := enumToStrings(nil, []Value{Const("a")}, 1, 5); got != nil {
		t.Errorf("empty ids out of range: %v, want none", got)
	}
}

func TestEnumClampsAndStops(t *testing.T) {
	ids := []uint64{1}
	rng := []Value{Const("a"), Const("b"), Const("c")}
	if got := enumToStrings(ids, rng, -5, 99); len(got) != 3 {
		t.Errorf("clamped enumeration yielded %d, want 3", len(got))
	}
	n := 0
	EnumValuations(ids, rng, 0, 3, func(Valuation) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d, want 1", n)
	}
	if got := enumToStrings(ids, nil, 0, 5); got != nil {
		t.Errorf("empty range with ids: %v, want none", got)
	}
}
