package value

// Unification of tuples, written r̄ ⇑ s̄ in the paper (Section 4.2 and
// Section 5.1): two tuples are unifiable when some valuation v of their
// nulls makes them equal, v(r̄) = v(s̄). Because our "terms" are flat
// (constants and nulls, no function symbols), unifiability reduces to a
// union–find pass: merge the two components at each position and fail only
// if some class ends up containing two distinct constants. This is the
// linear-time special case of Paterson–Wegman unification [57].

// unifier is a union–find structure over values occurring in the tuples
// being unified. Each class tracks the unique constant it contains, if any.
type unifier struct {
	parent map[Value]Value
	cval   map[Value]Value // representative -> the constant in its class
}

func newUnifier() *unifier {
	return &unifier{parent: map[Value]Value{}, cval: map[Value]Value{}}
}

func (u *unifier) find(v Value) Value {
	p, ok := u.parent[v]
	if !ok {
		u.parent[v] = v
		if v.IsConst() {
			u.cval[v] = v
		}
		return v
	}
	if p == v {
		return v
	}
	r := u.find(p)
	u.parent[v] = r
	return r
}

// union merges the classes of a and b; it reports false when the merge
// would identify two distinct constants.
func (u *unifier) union(a, b Value) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return true
	}
	ca, haveA := u.cval[ra]
	cb, haveB := u.cval[rb]
	if haveA && haveB && ca != cb {
		return false
	}
	u.parent[rb] = ra
	if haveB {
		u.cval[ra] = cb
	}
	return true
}

// Unifiable reports whether r̄ ⇑ s̄, i.e. some valuation makes the tuples
// equal. Tuples of different lengths never unify. Note that unifiability is
// not a pairwise property: (⊥1, ⊥1) does not unify with (a, b) for distinct
// constants a, b, because ⊥1 cannot be both.
func Unifiable(r, s Tuple) bool {
	if len(r) != len(s) {
		return false
	}
	// Fast pre-scan, allocation-free: a position holding two distinct
	// constants refutes unifiability outright, and tuples without any null
	// position unify iff they are equal. Only pairs that involve nulls and
	// survive the scan need the union–find (the transitive cases).
	needUF := false
	for i := range r {
		if r[i] == s[i] {
			continue
		}
		if r[i].IsConst() && s[i].IsConst() {
			return false
		}
		needUF = true
	}
	if !needUF {
		return true
	}
	u := newUnifier()
	for i := range r {
		if !u.union(r[i], s[i]) {
			return false
		}
	}
	return true
}

// Unify computes a most general unifying assignment for r̄ and s̄ when one
// exists: a map from null identifiers to representative values (a constant
// if the class contains one, otherwise the class's representative null).
// The boolean result mirrors Unifiable.
func Unify(r, s Tuple) (map[uint64]Value, bool) {
	if len(r) != len(s) {
		return nil, false
	}
	u := newUnifier()
	for i := range r {
		if !u.union(r[i], s[i]) {
			return nil, false
		}
	}
	out := map[uint64]Value{}
	assign := func(v Value) {
		if !v.IsNull() {
			return
		}
		rep := u.find(v)
		if c, ok := u.cval[rep]; ok {
			out[v.NullID()] = c
		} else {
			out[v.NullID()] = rep
		}
	}
	for i := range r {
		assign(r[i])
		assign(s[i])
	}
	return out, true
}
