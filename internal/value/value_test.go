package value

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestConstAndNullBasics(t *testing.T) {
	c := Const("abc")
	if c.IsNull() || !c.IsConst() {
		t.Fatalf("Const should be constant")
	}
	if c.ConstVal() != "abc" {
		t.Fatalf("ConstVal = %q", c.ConstVal())
	}
	n := Null(7)
	if !n.IsNull() || n.IsConst() {
		t.Fatalf("Null should be null")
	}
	if n.NullID() != 7 {
		t.Fatalf("NullID = %d", n.NullID())
	}
	if n.String() != "⊥7" {
		t.Fatalf("String = %q", n.String())
	}
	if Int(42) != Const("42") {
		t.Fatalf("Int(42) != Const(\"42\")")
	}
}

func TestConstValPanicsOnNull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	_ = Null(1).ConstVal()
}

func TestNullIDPanicsOnConst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	_ = Const("x").NullID()
}

func TestValueEqualityIsMarked(t *testing.T) {
	// Identical marked nulls are equal (repeatable); distinct ids are not.
	if Null(1) != Null(1) {
		t.Fatalf("⊥1 should equal ⊥1")
	}
	if Null(1) == Null(2) {
		t.Fatalf("⊥1 should differ from ⊥2")
	}
	if Null(1) == Const("⊥1") {
		t.Fatalf("null and constant must differ even with colliding text")
	}
}

func TestKeyInjective(t *testing.T) {
	vals := []Value{
		Const(""), Const("a"), Const("ab"), Const("1"), Int(1),
		Null(0), Null(1), Null(10), Const("\x001"), Const("⊥1"),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if w, ok := seen[k]; ok && w != v {
			t.Fatalf("key collision: %v and %v both map to %q", v, w, k)
		}
		seen[k] = v
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// constants before nulls, numerics before other strings, numeric order.
	ordered := []Value{Int(-3), Int(2), Int(10), Const("a"), Const("b"), Null(1), Null(2)}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareNumericVsString(t *testing.T) {
	if !Less(Int(2), Int(10)) {
		t.Fatalf("2 should sort before 10 numerically")
	}
	if !Less(Int(999), Const("1a")) {
		t.Fatalf("numeric constants sort before non-numeric")
	}
}

func TestTupleBasics(t *testing.T) {
	tu := T(Const("a"), Null(1))
	if tu.String() != "(a, ⊥1)" {
		t.Fatalf("String = %q", tu.String())
	}
	if !tu.HasNull() || tu.AllConst() {
		t.Fatalf("HasNull/AllConst wrong")
	}
	cs := Consts("x", "y")
	if cs.HasNull() || !cs.AllConst() {
		t.Fatalf("const tuple misclassified")
	}
	if !tu.Equal(T(Const("a"), Null(1))) {
		t.Fatalf("Equal failed")
	}
	if tu.Equal(T(Const("a"), Null(2))) {
		t.Fatalf("Equal should distinguish null ids")
	}
	if got := tu.Concat(cs); len(got) != 4 || got[2] != Const("x") {
		t.Fatalf("Concat = %v", got)
	}
	if got := tu.Project([]int{1, 0, 1}); !got.Equal(T(Null(1), Const("a"), Null(1))) {
		t.Fatalf("Project = %v", got)
	}
	n := tu.Nulls()
	if len(n) != 1 || !n[1] {
		t.Fatalf("Nulls = %v", n)
	}
}

func TestTupleCloneIndependent(t *testing.T) {
	a := T(Const("a"), Const("b"))
	b := a.Clone()
	b[0] = Const("z")
	if a[0] != Const("a") {
		t.Fatalf("Clone shares storage")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Adversarial cases where naive concatenation would collide.
	ts := []Tuple{
		Consts("ab", "c"), Consts("a", "bc"), Consts("abc"), Consts("a", "b", "c"),
		Consts(""), Consts("", ""), {},
		T(Null(12)), T(Null(1), Int(2)),
	}
	seen := map[string]Tuple{}
	for _, tu := range ts {
		k := tu.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(tu) {
			t.Fatalf("key collision between %v and %v", prev, tu)
		}
		seen[k] = tu
	}
}

func TestSortTuplesDeterministic(t *testing.T) {
	ts := []Tuple{T(Null(2)), Consts("b"), Consts("a"), T(Null(1)), Consts("10"), Consts("9")}
	SortTuples(ts)
	want := []Tuple{Consts("9"), Consts("10"), Consts("a"), Consts("b"), T(Null(1)), T(Null(2))}
	for i := range want {
		if !ts[i].Equal(want[i]) {
			t.Fatalf("position %d: got %v want %v", i, ts[i], want[i])
		}
	}
}

func TestValuationApply(t *testing.T) {
	v := NewValuation()
	v.Set(1, Const("c"))
	got := v.Apply(T(Null(1), Null(2), Const("k")))
	if !got.Equal(T(Const("c"), Null(2), Const("k"))) {
		t.Fatalf("Apply = %v", got)
	}
	if v.ApplyValue(Null(1)) != Const("c") || v.ApplyValue(Null(3)) != Null(3) {
		t.Fatalf("ApplyValue wrong")
	}
	if v.String() != "{⊥1↦c}" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestValuationSetPanicsOnNullTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewValuation().Set(1, Null(2))
}

func TestValuationClone(t *testing.T) {
	v := NewValuation()
	v.Set(1, Const("a"))
	w := v.Clone()
	w.Set(1, Const("b"))
	if v[1] != Const("a") {
		t.Fatalf("Clone shares storage")
	}
}

func TestUnifiableBasics(t *testing.T) {
	cases := []struct {
		r, s Tuple
		want bool
	}{
		{Consts("a"), Consts("a"), true},
		{Consts("a"), Consts("b"), false},
		{T(Null(1)), Consts("a"), true},
		{T(Null(1), Null(1)), Consts("a", "b"), false}, // repeated null, distinct constants
		{T(Null(1), Null(1)), Consts("a", "a"), true},
		{T(Null(1), Null(2)), Consts("a", "b"), true},
		{T(Null(1), Const("a")), T(Const("b"), Null(1)), true}, // ⊥1↦b ok: positions (⊥1,b),(a,⊥1)? classes {⊥1,b},{a,⊥1} merge all: {⊥1,a,b} -> a≠b
		{Consts("a"), Consts("a", "b"), false},                 // arity mismatch
		{T(), T(), true},
	}
	// Fix the transitive case by hand: (⊥1, a) vs (b, ⊥1) forces ⊥1=b and a=⊥1,
	// hence a=b — NOT unifiable.
	cases[6].want = false
	for _, c := range cases {
		if got := Unifiable(c.r, c.s); got != c.want {
			t.Errorf("Unifiable(%v, %v) = %v, want %v", c.r, c.s, got, c.want)
		}
	}
}

func TestUnifiableTransitivityChain(t *testing.T) {
	// (⊥1, ⊥2, ⊥2) vs (⊥2, ⊥3, c): classes {⊥1,⊥2,⊥3,c} — fine.
	if !Unifiable(T(Null(1), Null(2), Null(2)), T(Null(2), Null(3), Const("c"))) {
		t.Fatalf("chain should unify")
	}
	// (⊥1, ⊥1) vs (a, ⊥2) plus (⊥2 vs b) style conflict:
	// (⊥1, ⊥1, ⊥2) vs (a, ⊥2, b): ⊥1=a, ⊥1=⊥2, ⊥2=b ⇒ a=b conflict.
	if Unifiable(T(Null(1), Null(1), Null(2)), T(Const("a"), Null(2), Const("b"))) {
		t.Fatalf("transitive conflict should not unify")
	}
}

func TestUnifyAssignment(t *testing.T) {
	m, ok := Unify(T(Null(1), Null(2)), T(Const("a"), Null(1)))
	if !ok {
		t.Fatalf("should unify")
	}
	// ⊥1 = a forced; ⊥2 = ⊥1 = a forced.
	if m[1] != Const("a") || m[2] != Const("a") {
		t.Fatalf("Unify = %v", m)
	}
	m, ok = Unify(T(Null(1)), T(Null(2)))
	if !ok {
		t.Fatalf("nulls should unify")
	}
	if m[1].IsConst() || m[2].IsConst() {
		t.Fatalf("no constants should be forced: %v", m)
	}
}

// randomTuplePair builds tuples sharing a small pool of nulls and constants,
// good at exercising the transitive cases of unification.
func randomTuplePair(r *rand.Rand) (Tuple, Tuple) {
	n := r.Intn(5)
	mk := func() Tuple {
		t := make(Tuple, n)
		for i := range t {
			if r.Intn(2) == 0 {
				t[i] = Null(uint64(r.Intn(3)) + 1)
			} else {
				t[i] = Const(string(rune('a' + r.Intn(3))))
			}
		}
		return t
	}
	return mk(), mk()
}

// Property: Unifiable(r, s) holds iff some valuation over the tiny candidate
// space makes the tuples equal (brute force over 4 constants per null).
func TestUnifiableMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			a, b := randomTuplePair(r)
			args[0] = reflect.ValueOf(a)
			args[1] = reflect.ValueOf(b)
		},
	}
	consts := []Value{Const("a"), Const("b"), Const("c"), Const("z")}
	prop := func(r, s Tuple) bool {
		ids := map[uint64]bool{}
		for id := range r.Nulls() {
			ids[id] = true
		}
		for id := range s.Nulls() {
			ids[id] = true
		}
		ordered := make([]uint64, 0, len(ids))
		for id := range ids {
			ordered = append(ordered, id)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
		var brute func(i int, v Valuation) bool
		brute = func(i int, v Valuation) bool {
			if i == len(ordered) {
				return v.Apply(r).Equal(v.Apply(s))
			}
			for _, c := range consts {
				v.Set(ordered[i], c)
				if brute(i+1, v) {
					return true
				}
			}
			delete(v, ordered[i])
			return false
		}
		want := brute(0, NewValuation())
		return Unifiable(r, s) == want
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the assignment returned by Unify actually unifies the tuples
// once fresh nulls are mapped to a common constant.
func TestUnifyProducesUnifier(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			a, b := randomTuplePair(r)
			args[0] = reflect.ValueOf(a)
			args[1] = reflect.ValueOf(b)
		},
	}
	prop := func(r, s Tuple) bool {
		m, ok := Unify(r, s)
		if !ok {
			return !Unifiable(r, s)
		}
		v := NewValuation()
		// Map every class representative (possibly a null) to a constant.
		fresh := map[uint64]Value{}
		next := 0
		for id, target := range m {
			if target.IsConst() {
				v.Set(id, target)
				continue
			}
			rep := target.NullID()
			c, ok := fresh[rep]
			if !ok {
				c = Const("fresh" + string(rune('A'+next)))
				next++
				fresh[rep] = c
			}
			v.Set(id, c)
			if _, bound := v[rep]; !bound {
				v.Set(rep, c)
			}
		}
		return v.Apply(r).Equal(v.Apply(s))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
