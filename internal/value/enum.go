package value

// EnumSize returns the number of valuations of ids into rng — len(rng)^len(ids)
// — or -1 when that count overflows int. A nil ids slice has exactly one
// valuation (the empty one).
func EnumSize(ids []uint64, rng []Value) int {
	if len(ids) > 0 && len(rng) == 0 {
		return 0 // nulls to bind but nothing to bind them to
	}
	count := 1
	for range ids {
		count *= len(rng)
		if count <= 0 {
			return -1
		}
	}
	return count
}

// EnumValuations enumerates the valuations of ids into rng whose index lies
// in [lo, hi), calling f on each; return false from f to stop early. The
// index order is the mixed-radix odometer with ids[0] as the most
// significant digit, i.e. the same nested-loop order a recursive
// enumeration over ids produces, so EnumValuations(ids, rng, 0, size, f)
// visits valuations exactly as the serial oracles do. This is what lets
// parallel callers shard the index space into contiguous ranges and still
// merge results in the serial order.
//
// The Valuation passed to f is reused between calls; f must not retain it.
func EnumValuations(ids []uint64, rng []Value, lo, hi int, f func(v Valuation) bool) {
	if len(ids) == 0 {
		if lo <= 0 && hi > 0 {
			f(NewValuation())
		}
		return
	}
	size := EnumSize(ids, rng)
	if size == 0 { // empty range with nulls to bind: no valuations
		return
	}
	if lo < 0 {
		lo = 0
	}
	if size > 0 && hi > size {
		hi = size
	}
	if lo >= hi {
		return
	}
	base := len(rng)
	digits := make([]int, len(ids))
	x := lo
	for i := len(ids) - 1; i >= 0; i-- {
		digits[i] = x % base
		x /= base
	}
	v := NewValuation()
	for i, d := range digits {
		v.Set(ids[i], rng[d])
	}
	for idx := lo; idx < hi; idx++ {
		if !f(v) {
			return
		}
		for i := len(ids) - 1; i >= 0; i-- {
			digits[i]++
			if digits[i] < base {
				v.Set(ids[i], rng[digits[i]])
				break
			}
			digits[i] = 0
			v.Set(ids[i], rng[0])
		}
	}
}
