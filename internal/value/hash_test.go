package value

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"
)

// randomValue draws from a small pool of constants and nulls, with payload
// collisions against null renderings ("⊥1", "1") included on purpose.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Null(uint64(r.Intn(4)))
	case 1:
		return Int(r.Intn(4))
	case 2:
		return Const("⊥" + strconv.Itoa(r.Intn(4)))
	default:
		return Const(string(rune('a' + r.Intn(3))))
	}
}

func randomTuple(r *rand.Rand) Tuple {
	t := make(Tuple, r.Intn(4))
	for i := range t {
		t[i] = randomValue(r)
	}
	return t
}

// Property: the hash-native identity (Hash + Equal) agrees with the
// string-keyed identity (Key) that PR 1 storage was built on. Equal must
// coincide with Key equality exactly, and Hash must be Equal-consistent.
func TestTupleHashEqualAgreesWithKey(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			a := randomTuple(r)
			b := randomTuple(r)
			if r.Intn(3) == 0 {
				b = a.Clone() // force plenty of equal pairs
			}
			args[0] = reflect.ValueOf(a)
			args[1] = reflect.ValueOf(b)
		},
	}
	prop := func(a, b Tuple) bool {
		eq := a.Equal(b)
		if eq != (a.Key() == b.Key()) {
			t.Logf("Equal=%v but Key match=%v for %v vs %v", eq, !eq, a, b)
			return false
		}
		if eq && a.Hash() != b.Hash() {
			t.Logf("equal tuples hash apart: %v", a)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Constants never collide with nulls, even when the constant payload spells
// a null: Const("7") vs ⊥7 and Const("⊥7") vs ⊥7 stay distinct under ==,
// Key and (up to the 2⁻⁶⁴ seed accident) Hash.
func TestConstNullNeverCollide(t *testing.T) {
	for _, id := range []uint64{0, 1, 7, 12345} {
		n := Null(id)
		for _, c := range []Value{Const(strconv.FormatUint(id, 10)), Const(n.String())} {
			if c == n {
				t.Fatalf("constant %v equals null %v", c, n)
			}
			if c.Key() == n.Key() {
				t.Fatalf("Key collision between %v and %v", c, n)
			}
			if c.Hash() == n.Hash() {
				t.Fatalf("hash collision between constant %v and null %v", c, n)
			}
			ct, nt := T(c), T(n)
			if ct.Hash() == nt.Hash() {
				t.Fatalf("tuple hash collision between %v and %v", ct, nt)
			}
		}
	}
}

// Distinct spellings of the same number are the same number semantically
// (Compare ties at 0, so neither is < the other in queries) but distinct
// values for ordering: OrderCompare breaks the tie lexicographically so
// the sorted row snapshot is never at the mercy of map iteration order.
func TestNumericSpellingsSemanticTieOrderStrict(t *testing.T) {
	vals := []Value{Const("+1"), Const("01"), Const("1")}
	for i, a := range vals {
		for j, b := range vals {
			if got := Compare(a, b); got != 0 {
				t.Fatalf("semantic Compare(%q, %q) = %d, want 0", a, b, got)
			}
			got := OrderCompare(a, b)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Fatalf("OrderCompare(%q, %q) = %d, want %d", a, b, got, want)
			}
		}
	}
	// Values that differ semantically order identically under both.
	if OrderCompare(Const("2"), Const("10")) != Compare(Const("2"), Const("10")) {
		t.Fatalf("OrderCompare disagrees with Compare on semantically distinct values")
	}
}

// Interned constants with equal payloads are the same word; distinct
// payloads are distinct words, and the numeric parse is available without
// re-parsing.
func TestDictInterning(t *testing.T) {
	a, b := Const("hello"), Const("hel"+"lo")
	if a != b {
		t.Fatalf("same payload interned twice")
	}
	if Const("x") == Const("y") {
		t.Fatalf("distinct payloads collide")
	}
	n, ok := Const("-42").Num()
	if !ok || n != -42 {
		t.Fatalf("Num(-42) = %d, %v", n, ok)
	}
	if _, ok := Const("4x2").Num(); ok {
		t.Fatalf("non-numeric payload parsed")
	}
	if DictLen() < 2 {
		t.Fatalf("dictionary unexpectedly empty: %d", DictLen())
	}
}

// Fuzz the identity agreement over arbitrary payload/id pairs: two
// single-value tuples must agree on Equal vs Key, Equal-consistent hashing,
// and the constant/null separation.
func FuzzValueHashKeyAgreement(f *testing.F) {
	f.Add("a", uint64(1), "b", uint64(2))
	f.Add("", uint64(0), "\x00", uint64(0))
	f.Add("7", uint64(7), "⊥7", uint64(7))
	f.Fuzz(func(t *testing.T, s1 string, id1 uint64, s2 string, id2 uint64) {
		vals := []Value{Const(s1), Const(s2), Null(id1), Null(id2)}
		for _, a := range vals {
			for _, b := range vals {
				if (a == b) != (a.Key() == b.Key()) {
					t.Fatalf("==/Key disagree for %v vs %v", a, b)
				}
				if a == b && a.Hash() != b.Hash() {
					t.Fatalf("equal values hash apart: %v", a)
				}
				if a.IsConst() && b.IsNull() && a == b {
					t.Fatalf("constant equals null: %v vs %v", a, b)
				}
			}
		}
		ta, tb := T(Const(s1), Null(id1)), T(Const(s2), Null(id2))
		if ta.Equal(tb) != (ta.Key() == tb.Key()) {
			t.Fatalf("tuple Equal/Key disagree for %v vs %v", ta, tb)
		}
		if ta.Equal(tb) && ta.Hash() != tb.Hash() {
			t.Fatalf("equal tuples hash apart: %v", ta)
		}
	})
}
