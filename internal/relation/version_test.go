package relation

import (
	"sync"
	"testing"

	"incdb/internal/value"
)

// TestVersionBumpsOnEveryMutationPath pins the contract long-lived caches
// rely on: every mutating call moves the version, even when it is a no-op.
func TestVersionBumpsOnEveryMutationPath(t *testing.T) {
	r := New("R", "a", "b")
	if r.Version() != 0 {
		t.Fatalf("fresh relation version = %d, want 0", r.Version())
	}
	last := r.Version()
	step := func(name string, f func()) {
		f()
		if r.Version() <= last {
			t.Fatalf("%s did not bump the version (still %d)", name, r.Version())
		}
		last = r.Version()
	}
	step("Add", func() { r.Add(value.Consts("x", "y")) })
	step("AddMult", func() { r.AddMult(value.Consts("x", "y"), 2) })
	step("AddMult negative", func() { r.AddMult(value.Consts("x", "y"), -1) })
	step("AddMult no-op (absent, m<=0)", func() { r.AddMult(value.Consts("q", "q"), -1) })
	step("SetMult", func() { r.SetMult(value.Consts("x", "y"), 5) })
	step("SetMult remove", func() { r.SetMult(value.Consts("x", "y"), 0) })
	step("Normalize", func() { r.Normalize() })
}

// TestVersionStableAcrossReads checks that read-only accessors — including
// the ones that build lazy derived state — never move the version.
func TestVersionStableAcrossReads(t *testing.T) {
	r := New("R", "a")
	r.Add(value.T(value.Null(1)))
	r.Add(value.Consts("c"))
	v := r.Version()
	_ = r.HasNulls()
	_ = r.Tuples()
	_ = r.String()
	r.Each(func(value.Tuple, int) {})
	r.EachMatch(0, value.Const("c"), func(value.Tuple, int) {})
	_ = r.Contains(value.Consts("c"))
	_ = r.Size()
	if r.Version() != v {
		t.Fatalf("read-only accessors moved the version: %d -> %d", v, r.Version())
	}
}

// TestVersionCloneAndApply: Clone preserves the version (the copy holds the
// same contents, so cached state keyed on (pointer, version) pairs stays
// distinguishable yet comparable); Apply builds fresh relations at zero.
func TestVersionCloneAndApply(t *testing.T) {
	r := New("R", "a")
	r.Add(value.T(value.Null(1)))
	r.Add(value.Consts("c"))
	want := r.Version()
	c := r.Clone()
	if c.Version() != want {
		t.Fatalf("Clone version = %d, want %d", c.Version(), want)
	}
	val := value.NewValuation()
	val.Set(1, value.Const("z"))
	if got := r.Apply(val).Version(); got != 0 {
		t.Fatalf("Apply result version = %d, want 0 (fresh relation)", got)
	}
	if r.Version() != want {
		t.Fatalf("Apply moved the source version: %d -> %d", want, r.Version())
	}
}

// TestVersionStableUnderApplyShared: building worlds from a base database
// (the oracle hot loop) must not perturb the base's version vector, and
// null-free relations shared by pointer keep their version in the world.
func TestVersionStableUnderApplyShared(t *testing.T) {
	db := NewDatabase()
	withNulls := New("N", "a")
	withNulls.Add(value.T(value.Null(1)))
	complete := New("C", "a")
	complete.Add(value.Consts("c"))
	complete.Add(value.Consts("d"))
	db.Add(withNulls).Add(complete)

	before := db.Versions()
	val := value.NewValuation()
	val.Set(1, value.Const("c"))

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				world := db.ApplyShared(val)
				if world.Relation("C") != complete {
					t.Error("null-free relation not shared by pointer")
					return
				}
				if world.Relation("C").Version() != before["C"] {
					t.Error("shared relation version moved in world")
					return
				}
			}
		}()
	}
	wg.Wait()
	after := db.Versions()
	for name, v := range before {
		if after[name] != v {
			t.Fatalf("ApplyShared moved version of %s: %d -> %d", name, v, after[name])
		}
	}
}
