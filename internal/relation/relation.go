// Package relation implements relations over constants and marked nulls,
// and incomplete databases built from them (Section 2 of the paper).
//
// Relations carry tuple multiplicities so that both the set semantics used
// throughout Sections 3–5 and the bag semantics of Section 4.2 run on the
// same representation: set-semantics operators normalize all multiplicities
// to one, bag-semantics operators combine them the way SQL does.
package relation

import (
	"fmt"
	"strings"

	"incdb/internal/value"
)

// Relation is a finite multiset of tuples of a fixed arity, optionally with
// attribute names for display. The zero value is not usable; construct with
// New.
type Relation struct {
	name  string
	attrs []string
	arity int
	rows  map[string]*row
	// idx holds lazily built per-column hash indexes (column → value →
	// matching rows, buckets in deterministic tuple order). Any structural
	// mutation invalidates the whole map; see EachMatch.
	idx map[int]map[value.Value][]*row
}

type row struct {
	t    value.Tuple
	mult int
}

// New returns an empty relation with the given name and attribute names.
// The arity is len(attrs).
func New(name string, attrs ...string) *Relation {
	return &Relation{name: name, attrs: attrs, arity: len(attrs), rows: map[string]*row{}}
}

// NewArity returns an empty relation with the given arity and synthesized
// attribute names #0, #1, ….
func NewArity(name string, arity int) *Relation {
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("#%d", i)
	}
	return New(name, attrs...)
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Attrs returns the attribute names (do not modify).
func (r *Relation) Attrs() []string { return r.attrs }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return r.arity }

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// Add inserts one occurrence of t. It panics on arity mismatch: feeding a
// wrongly shaped tuple is always a bug in the caller.
func (r *Relation) Add(t value.Tuple) { r.AddMult(t, 1) }

// AddMult inserts m occurrences of t (m may be negative to subtract;
// multiplicities are clamped at zero and zero-rows removed, matching SQL's
// EXCEPT ALL arithmetic).
func (r *Relation) AddMult(t value.Tuple, m int) {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation %s: arity mismatch: tuple %v vs arity %d", r.name, t, r.arity))
	}
	r.idx = nil // rows may appear or vanish; rebuild indexes on demand
	k := t.Key()
	e, ok := r.rows[k]
	if !ok {
		if m <= 0 {
			return
		}
		r.rows[k] = &row{t: t.Clone(), mult: m}
		return
	}
	e.mult += m
	if e.mult <= 0 {
		delete(r.rows, k)
	}
}

// SetMult sets the multiplicity of t to m exactly (removing it when m<=0).
func (r *Relation) SetMult(t value.Tuple, m int) {
	r.idx = nil
	k := t.Key()
	if m <= 0 {
		delete(r.rows, k)
		return
	}
	if e, ok := r.rows[k]; ok {
		e.mult = m
		return
	}
	r.rows[k] = &row{t: t.Clone(), mult: m}
}

// Contains reports whether t occurs at least once.
func (r *Relation) Contains(t value.Tuple) bool {
	_, ok := r.rows[t.Key()]
	return ok
}

// Mult returns the multiplicity #(t, R), zero when absent.
func (r *Relation) Mult(t value.Tuple) int {
	if e, ok := r.rows[t.Key()]; ok {
		return e.mult
	}
	return 0
}

// Len returns the number of distinct tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Size returns the total number of tuple occurrences (bag cardinality).
func (r *Relation) Size() int {
	n := 0
	for _, e := range r.rows {
		n += e.mult
	}
	return n
}

// Tuples returns the distinct tuples in deterministic (sorted) order.
func (r *Relation) Tuples() []value.Tuple {
	out := make([]value.Tuple, 0, len(r.rows))
	for _, e := range r.rows {
		out = append(out, e.t)
	}
	value.SortTuples(out)
	return out
}

// Each calls f on every distinct tuple with its multiplicity, in
// deterministic order. f must not mutate the tuple.
func (r *Relation) Each(f func(t value.Tuple, mult int)) {
	for _, t := range r.Tuples() {
		f(t, r.rows[t.Key()].mult)
	}
}

// Normalize sets every multiplicity to one (bag → set). Indexes survive:
// they hold row pointers, so multiplicity updates are visible through them.
func (r *Relation) Normalize() {
	for _, e := range r.rows {
		e.mult = 1
	}
}

// indexOn returns the hash index for col, building it lazily. Buckets are
// filled in sorted tuple order so that every index-driven iteration is
// deterministic. The build mutates r, so a relation must not see its first
// EachMatch for a given column from two goroutines at once; evaluation-local
// relations (the only index users) satisfy this trivially.
func (r *Relation) indexOn(col int) map[value.Value][]*row {
	if col < 0 || col >= r.arity {
		panic(fmt.Sprintf("relation %s: index column %d out of range for arity %d", r.name, col, r.arity))
	}
	if ix, ok := r.idx[col]; ok {
		return ix
	}
	ix := make(map[value.Value][]*row, len(r.rows))
	for _, t := range r.Tuples() {
		e := r.rows[t.Key()]
		ix[t[col]] = append(ix[t[col]], e)
	}
	if r.idx == nil {
		r.idx = map[int]map[value.Value][]*row{}
	}
	r.idx[col] = ix
	return ix
}

// EachMatch calls f on every tuple whose col-th component equals v (marked
// nulls match themselves — Value equality), with its multiplicity, in
// deterministic (sorted) order. The underlying per-column hash index is
// built on first use and invalidated by Add/AddMult/SetMult, so probing a
// stable relation n times costs O(n) after one O(len) build instead of the
// O(n·len) of repeated scans.
func (r *Relation) EachMatch(col int, v value.Value, f func(t value.Tuple, mult int)) {
	for _, e := range r.indexOn(col)[v] {
		f(e.t, e.mult)
	}
}

// MatchCount returns the number of distinct tuples whose col-th component
// equals v.
func (r *Relation) MatchCount(col int, v value.Value) int {
	return len(r.indexOn(col)[v])
}

// Clone returns a deep copy, optionally renamed.
func (r *Relation) Clone() *Relation {
	c := &Relation{name: r.name, attrs: append([]string(nil), r.attrs...), arity: r.arity, rows: map[string]*row{}}
	for k, e := range r.rows {
		c.rows[k] = &row{t: e.t.Clone(), mult: e.mult}
	}
	return c
}

// Rename returns r itself after setting its name; handy when materializing
// intermediate results.
func (r *Relation) Rename(name string) *Relation {
	r.name = name
	return r
}

// Equal reports whether the two relations hold exactly the same multiset of
// tuples (names and attribute labels are ignored).
func (r *Relation) Equal(s *Relation) bool {
	if r.arity != s.arity || len(r.rows) != len(s.rows) {
		return false
	}
	for k, e := range r.rows {
		f, ok := s.rows[k]
		if !ok || f.mult != e.mult {
			return false
		}
	}
	return true
}

// EqualSet reports set-semantics equality: same distinct tuples,
// multiplicities ignored.
func (r *Relation) EqualSet(s *Relation) bool {
	if r.arity != s.arity || len(r.rows) != len(s.rows) {
		return false
	}
	for k := range r.rows {
		if _, ok := s.rows[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOfSet reports whether every distinct tuple of r occurs in s.
func (r *Relation) SubsetOfSet(s *Relation) bool {
	for k := range r.rows {
		if _, ok := s.rows[k]; !ok {
			return false
		}
	}
	return true
}

// HasNulls reports whether any stored tuple contains a null.
func (r *Relation) HasNulls() bool {
	for _, e := range r.rows {
		if e.t.HasNull() {
			return true
		}
	}
	return false
}

// Apply returns the relation v(R): every bound null replaced, multiplicities
// of collapsing tuples added (the "add up multiplicities" reading of
// applying valuations to bags, cf. [42] as discussed in Section 6).
func (r *Relation) Apply(v value.Valuation) *Relation {
	out := New(r.name, r.attrs...)
	for _, e := range r.rows {
		out.AddMult(v.Apply(e.t), e.mult)
	}
	return out
}

// String renders the relation as a small aligned table, deterministically.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) {", r.name, strings.Join(r.attrs, ", "))
	ts := r.Tuples()
	if len(ts) == 0 {
		b.WriteString("}")
		return b.String()
	}
	b.WriteString("\n")
	for _, t := range ts {
		m := r.rows[t.Key()].mult
		if m == 1 {
			fmt.Fprintf(&b, "  %s\n", t)
		} else {
			fmt.Fprintf(&b, "  %s ×%d\n", t, m)
		}
	}
	b.WriteString("}")
	return b.String()
}

// FromTuples builds a set-semantics relation from tuples.
func FromTuples(name string, arity int, ts ...value.Tuple) *Relation {
	r := NewArity(name, arity)
	for _, t := range ts {
		r.Add(t)
	}
	return r
}
