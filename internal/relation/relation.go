// Package relation implements relations over constants and marked nulls,
// and incomplete databases built from them (Section 2 of the paper).
//
// Relations carry tuple multiplicities so that both the set semantics used
// throughout Sections 3–5 and the bag semantics of Section 4.2 run on the
// same representation: set-semantics operators normalize all multiplicities
// to one, bag-semantics operators combine them the way SQL does.
//
// Storage is hash-native: rows live in buckets keyed by the tuple's cached
// 64-bit hash (value.Tuple.Hash), with collisions resolved by
// value.Tuple.Equal — no per-probe string Key() is ever materialized.
// Deterministic iteration comes from a lazily built sorted row snapshot
// that structural mutation invalidates alongside the per-column indexes.
package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"incdb/internal/value"
)

// Relation is a finite multiset of tuples of a fixed arity, optionally with
// attribute names for display. The zero value is not usable; construct with
// New.
type Relation struct {
	name  string
	attrs []string
	arity int
	// rows buckets the stored rows by their cached tuple hash; a bucket
	// holds the (rare) rows whose distinct tuples collide on the hash.
	rows map[uint64][]*row
	// distinct counts stored rows, i.e. distinct tuples.
	distinct int
	// sorted is the lazily built deterministic iteration order: all rows
	// sorted by Tuple.Compare. Structural mutation invalidates it (stores
	// nil). It is an atomic pointer so that goroutines sharing a read-only
	// relation may race on the first lazy build: both build the same
	// deterministic snapshot and publication is idempotent.
	sorted atomic.Pointer[[]*row]
	// idx holds lazily built per-column hash indexes (column → value →
	// matching rows, buckets in deterministic tuple order). Any structural
	// mutation invalidates the whole map; see EachMatch.
	idx map[int]map[value.Value][]*row
	// nullState caches HasNulls: 0 unknown, 1 null-free, 2 has nulls.
	// Atomic for the same reason as sorted: concurrent readers of a stable
	// relation may race on the first computation, which is idempotent.
	nullState atomic.Int32
	// statsCache holds the lazily computed statistics snapshot (stats.go),
	// keyed by the version it was computed at rather than invalidated
	// eagerly — Normalize moves the version without calling invalidate.
	statsCache atomic.Pointer[statsSnap]
	// version counts content mutations: every Add/AddMult/SetMult/Normalize
	// call bumps it (even when the call turns out to be a no-op — the
	// counter over-approximates change, it never misses one). Long-lived
	// consumers key cached derived state (prepared plans, frozen subplan
	// results) on it and re-derive exactly when the version moves. Mutation
	// requires external exclusivity anyway, so the counter is a plain word;
	// readers of a stable relation see a stable value.
	version uint64
}

// row is one stored tuple with its multiplicity and cached content hash.
// The hash is computed once at insertion and reused by every later probe,
// clone and world-instantiation of the row.
type row struct {
	t       value.Tuple
	hash    uint64
	mult    int
	hasNull bool
}

// New returns an empty relation with the given name and attribute names.
// The arity is len(attrs).
func New(name string, attrs ...string) *Relation {
	return &Relation{name: name, attrs: attrs, arity: len(attrs), rows: map[uint64][]*row{}}
}

// NewArity returns an empty relation with the given arity and synthesized
// attribute names #0, #1, ….
func NewArity(name string, arity int) *Relation {
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("#%d", i)
	}
	return New(name, attrs...)
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Attrs returns the attribute names (do not modify).
func (r *Relation) Attrs() []string { return r.attrs }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return r.arity }

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// lookup returns the stored row equal to t under hash h, or nil.
func (r *Relation) lookup(t value.Tuple, h uint64) *row {
	for _, e := range r.rows[h] {
		if e.t.Equal(t) {
			return e
		}
	}
	return nil
}

// invalidate drops the derived structures and bumps the mutation version;
// every structural mutation calls it because rows may appear or vanish.
func (r *Relation) invalidate() {
	r.idx = nil
	r.sorted.Store(nil)
	r.nullState.Store(0)
	r.version++
}

// Version returns the mutation counter: it moves on every mutating call
// (Add, AddMult, SetMult, Normalize), so equal versions of the same
// relation object guarantee identical contents. Clone preserves the
// version; valuation instantiation (Apply) builds fresh relations starting
// at zero.
func (r *Relation) Version() uint64 { return r.version }

// RestoreVersion raises the mutation counter to v (a no-op when the counter
// is already past it). Crash recovery uses it so that a relation rebuilt
// from a snapshot reports the same version vector as the original did at
// snapshot time — the counter over-approximates change, so jumping it
// forward is always safe, while lowering it could revive stale cached
// state; hence the clamp. Requires the external exclusivity every mutation
// does.
func (r *Relation) RestoreVersion(v uint64) {
	if v > r.version {
		r.version = v
	}
}

// removeRow deletes the stored row equal to t under hash h, if present.
func (r *Relation) removeRow(t value.Tuple, h uint64) {
	bucket := r.rows[h]
	for i, e := range bucket {
		if e.t.Equal(t) {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			if len(bucket) == 0 {
				delete(r.rows, h)
			} else {
				r.rows[h] = bucket
			}
			r.distinct--
			return
		}
	}
}

// insertRow stores a fresh row; t must not be aliased by the caller
// afterwards (Add clones on behalf of external callers, world
// instantiation hands over freshly built or frozen tuples).
func (r *Relation) insertRow(t value.Tuple, h uint64, m int) {
	r.rows[h] = append(r.rows[h], &row{t: t, hash: h, mult: m, hasNull: t.HasNull()})
	r.distinct++
}

// Add inserts one occurrence of t. It panics on arity mismatch: feeding a
// wrongly shaped tuple is always a bug in the caller.
func (r *Relation) Add(t value.Tuple) { r.AddMult(t, 1) }

// AddMult inserts m occurrences of t (m may be negative to subtract;
// multiplicities are clamped at zero and zero-rows removed, matching SQL's
// EXCEPT ALL arithmetic).
func (r *Relation) AddMult(t value.Tuple, m int) {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation %s: arity mismatch: tuple %v vs arity %d", r.name, t, r.arity))
	}
	r.invalidate()
	h := t.Hash()
	e := r.lookup(t, h)
	if e == nil {
		if m <= 0 {
			return
		}
		r.insertRow(t.Clone(), h, m)
		return
	}
	e.mult += m
	if e.mult <= 0 {
		r.removeRow(t, h)
	}
}

// addFrozen inserts m occurrences of an immutable tuple with a known hash,
// skipping both the re-hash and the defensive clone. It is the fast path of
// Apply/Clone: stored rows are never mutated, so sharing the tuple slice
// between the source and destination relation is safe.
func (r *Relation) addFrozen(t value.Tuple, h uint64, hasNull bool, m int) {
	if e := r.lookup(t, h); e != nil {
		e.mult += m
		if e.mult <= 0 {
			r.removeRow(t, h)
		}
		return
	}
	if m <= 0 {
		return
	}
	r.rows[h] = append(r.rows[h], &row{t: t, hash: h, mult: m, hasNull: hasNull})
	r.distinct++
}

// SetMult sets the multiplicity of t to m exactly (removing it when m<=0).
func (r *Relation) SetMult(t value.Tuple, m int) {
	r.invalidate()
	h := t.Hash()
	e := r.lookup(t, h)
	if m <= 0 {
		if e != nil {
			r.removeRow(t, h)
		}
		return
	}
	if e != nil {
		e.mult = m
		return
	}
	r.insertRow(t.Clone(), h, m)
}

// Contains reports whether t occurs at least once.
func (r *Relation) Contains(t value.Tuple) bool {
	return r.lookup(t, t.Hash()) != nil
}

// Mult returns the multiplicity #(t, R), zero when absent.
func (r *Relation) Mult(t value.Tuple) int {
	if e := r.lookup(t, t.Hash()); e != nil {
		return e.mult
	}
	return 0
}

// Len returns the number of distinct tuples.
func (r *Relation) Len() int { return r.distinct }

// Size returns the total number of tuple occurrences (bag cardinality).
func (r *Relation) Size() int {
	n := 0
	for _, bucket := range r.rows {
		for _, e := range bucket {
			n += e.mult
		}
	}
	return n
}

// sortedRows returns the deterministic row order, building it on first use
// after a mutation. Concurrent readers of a stable relation may both build
// it; the snapshot is a pure function of the rows, so either publication
// wins harmlessly.
func (r *Relation) sortedRows() []*row {
	if p := r.sorted.Load(); p != nil {
		return *p
	}
	rows := make([]*row, 0, r.distinct)
	for _, bucket := range r.rows {
		rows = append(rows, bucket...)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].t.Compare(rows[j].t) < 0 })
	r.sorted.Store(&rows)
	return rows
}

// Tuples returns the distinct tuples in deterministic (sorted) order.
func (r *Relation) Tuples() []value.Tuple {
	rows := r.sortedRows()
	out := make([]value.Tuple, len(rows))
	for i, e := range rows {
		out[i] = e.t
	}
	return out
}

// Each calls f on every distinct tuple with its multiplicity, in
// deterministic order. f must not mutate the tuple. The iteration reads the
// row entries directly — no per-tuple key lookup.
func (r *Relation) Each(f func(t value.Tuple, mult int)) {
	for _, e := range r.sortedRows() {
		f(e.t, e.mult)
	}
}

// EachUnordered calls f on every distinct tuple with its multiplicity, in
// unspecified (storage) order. It builds no derived structures, so it is
// both cheaper than Each and safe for concurrent readers of a shared
// relation; use it whenever the consumer is order-insensitive (streaming
// operators, hash-table builds, candidate collection).
func (r *Relation) EachUnordered(f func(t value.Tuple, mult int)) {
	for _, bucket := range r.rows {
		for _, e := range bucket {
			f(e.t, e.mult)
		}
	}
}

// eachStored calls f on every stored row in storage (bucket) order,
// stopping early when f returns false: the cheap iteration for
// order-insensitive consumers such as Apply and the database catalogue
// scans. It builds nothing, so concurrent readers of a shared relation
// stay read-only.
func (r *Relation) eachStored(f func(e *row) bool) {
	for _, bucket := range r.rows {
		for _, e := range bucket {
			if !f(e) {
				return
			}
		}
	}
}

// Normalize sets every multiplicity to one (bag → set). Indexes and the
// sorted snapshot survive: they hold row pointers, so multiplicity updates
// are visible through them, and the sort order ignores multiplicities. The
// mutation version still moves — bag-semantics consumers of cached state
// would otherwise miss the multiplicity change.
func (r *Relation) Normalize() {
	r.version++
	for _, bucket := range r.rows {
		for _, e := range bucket {
			e.mult = 1
		}
	}
}

// indexOn returns the hash index for col, building it lazily. Buckets are
// filled in sorted tuple order so that every index-driven iteration is
// deterministic. The build mutates r, so a relation must not see its first
// EachMatch for a given column from two goroutines at once; evaluation-local
// relations (the only index users) satisfy this trivially.
func (r *Relation) indexOn(col int) map[value.Value][]*row {
	if col < 0 || col >= r.arity {
		panic(fmt.Sprintf("relation %s: index column %d out of range for arity %d", r.name, col, r.arity))
	}
	if ix, ok := r.idx[col]; ok {
		return ix
	}
	ix := make(map[value.Value][]*row, r.distinct)
	for _, e := range r.sortedRows() {
		ix[e.t[col]] = append(ix[e.t[col]], e)
	}
	if r.idx == nil {
		r.idx = map[int]map[value.Value][]*row{}
	}
	r.idx[col] = ix
	return ix
}

// EachMatch calls f on every tuple whose col-th component equals v (marked
// nulls match themselves — Value equality), with its multiplicity, in
// deterministic (sorted) order. The underlying per-column hash index is
// built on first use and invalidated by Add/AddMult/SetMult, so probing a
// stable relation n times costs O(n) after one O(len) build instead of the
// O(n·len) of repeated scans.
func (r *Relation) EachMatch(col int, v value.Value, f func(t value.Tuple, mult int)) {
	for _, e := range r.indexOn(col)[v] {
		f(e.t, e.mult)
	}
}

// MatchCount returns the number of distinct tuples whose col-th component
// equals v.
func (r *Relation) MatchCount(col int, v value.Value) int {
	return len(r.indexOn(col)[v])
}

// Clone returns a deep copy, optionally renamed. Stored tuples are
// immutable, so the copy shares them (and their cached hashes) with the
// original; only the row entries themselves are fresh.
func (r *Relation) Clone() *Relation {
	c := &Relation{name: r.name, attrs: append([]string(nil), r.attrs...), arity: r.arity,
		rows: make(map[uint64][]*row, len(r.rows)), distinct: r.distinct, version: r.version}
	for h, bucket := range r.rows {
		nb := make([]*row, len(bucket))
		for i, e := range bucket {
			nb[i] = &row{t: e.t, hash: e.hash, mult: e.mult, hasNull: e.hasNull}
		}
		c.rows[h] = nb
	}
	return c
}

// Rename returns r itself after setting its name; handy when materializing
// intermediate results.
func (r *Relation) Rename(name string) *Relation {
	r.name = name
	return r
}

// Equal reports whether the two relations hold exactly the same multiset of
// tuples (names and attribute labels are ignored).
func (r *Relation) Equal(s *Relation) bool {
	if r.arity != s.arity || r.distinct != s.distinct {
		return false
	}
	for _, bucket := range r.rows {
		for _, e := range bucket {
			f := s.lookup(e.t, e.hash)
			if f == nil || f.mult != e.mult {
				return false
			}
		}
	}
	return true
}

// EqualSet reports set-semantics equality: same distinct tuples,
// multiplicities ignored.
func (r *Relation) EqualSet(s *Relation) bool {
	if r.arity != s.arity || r.distinct != s.distinct {
		return false
	}
	return r.SubsetOfSet(s)
}

// SubsetOfSet reports whether every distinct tuple of r occurs in s.
func (r *Relation) SubsetOfSet(s *Relation) bool {
	for _, bucket := range r.rows {
		for _, e := range bucket {
			if s.lookup(e.t, e.hash) == nil {
				return false
			}
		}
	}
	return true
}

// HasNulls reports whether any stored tuple contains a null. The answer is
// cached until the next structural mutation: the oracles consult it once
// per relation per world when deciding which relations a valuation can
// actually change.
func (r *Relation) HasNulls() bool {
	if s := r.nullState.Load(); s != 0 {
		return s == 2
	}
	state := int32(1)
	for _, bucket := range r.rows {
		for _, e := range bucket {
			if e.hasNull {
				state = 2
				break
			}
		}
		if state == 2 {
			break
		}
	}
	r.nullState.Store(state)
	return state == 2
}

// Apply returns the relation v(R): every bound null replaced, multiplicities
// of collapsing tuples added (the "add up multiplicities" reading of
// applying valuations to bags, cf. [42] as discussed in Section 6).
//
// Null-free rows cannot change under any valuation, so they are inserted by
// sharing the stored tuple and its cached hash — the oracle's per-world
// instantiation therefore re-hashes and re-allocates only the rows that
// actually mention nulls.
func (r *Relation) Apply(v value.Valuation) *Relation {
	out := New(r.name, r.attrs...)
	r.eachStored(func(e *row) bool {
		if !e.hasNull {
			out.addFrozen(e.t, e.hash, false, e.mult)
			return true
		}
		// The instantiated tuple is exclusively ours, so it can be stored
		// frozen too — one allocation and one hash per null row per world.
		nt := v.Apply(e.t)
		out.addFrozen(nt, nt.Hash(), nt.HasNull(), e.mult)
		return true
	})
	return out
}

// String renders the relation as a small aligned table, deterministically.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) {", r.name, strings.Join(r.attrs, ", "))
	rows := r.sortedRows()
	if len(rows) == 0 {
		b.WriteString("}")
		return b.String()
	}
	b.WriteString("\n")
	for _, e := range rows {
		if e.mult == 1 {
			fmt.Fprintf(&b, "  %s\n", e.t)
		} else {
			fmt.Fprintf(&b, "  %s ×%d\n", e.t, e.mult)
		}
	}
	b.WriteString("}")
	return b.String()
}

// FromTuples builds a set-semantics relation from tuples.
func FromTuples(name string, arity int, ts ...value.Tuple) *Relation {
	r := NewArity(name, arity)
	for _, t := range ts {
		r.Add(t)
	}
	return r
}
