package relation

import (
	"sort"
	"strings"

	"incdb/internal/value"
)

// Database is an incomplete relational instance D: a set of named relations
// whose tuples range over Const ∪ Null (Section 2). It also serves as the
// schema catalogue (relation names and arities) for query evaluation, and
// as the allocator of fresh marked nulls.
type Database struct {
	rels     map[string]*Relation
	order    []string
	nextNull uint64
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: map[string]*Relation{}, nextNull: 1}
}

// Add registers a relation; it replaces any previous relation of the same
// name. The database adopts (does not copy) the relation.
func (d *Database) Add(r *Relation) *Database {
	if _, ok := d.rels[r.name]; !ok {
		d.order = append(d.order, r.name)
	}
	d.rels[r.name] = r
	// Keep the fresh-null allocator ahead of any null already present.
	r.eachStored(func(e *row) bool {
		for _, v := range e.t {
			if v.IsNull() && v.NullID() >= d.nextNull {
				d.nextNull = v.NullID() + 1
			}
		}
		return true
	})
	return d
}

// Relation returns the named relation, or nil.
func (d *Database) Relation(name string) *Relation { return d.rels[name] }

// MustRelation returns the named relation or panics; use when the schema is
// known statically.
func (d *Database) MustRelation(name string) *Relation {
	r := d.rels[name]
	if r == nil {
		panic("relation: no relation named " + name)
	}
	return r
}

// Names returns the relation names in insertion order.
func (d *Database) Names() []string { return append([]string(nil), d.order...) }

// Arity returns the arity of the named relation, or -1 when absent.
func (d *Database) Arity(name string) int {
	if r := d.rels[name]; r != nil {
		return r.arity
	}
	return -1
}

// Versions returns the database's version vector: every relation's
// mutation counter (Relation.Version), keyed by name. Two snapshots of the
// same database object with equal vectors are guaranteed to hold identical
// contents; a long-lived service keys cached prepared state on it.
func (d *Database) Versions() map[string]uint64 {
	out := make(map[string]uint64, len(d.rels))
	for name, r := range d.rels {
		out[name] = r.version
	}
	return out
}

// FreshNull allocates a marked null unused anywhere in the database so far.
func (d *Database) FreshNull() value.Value {
	v := value.Null(d.nextNull)
	d.nextNull++
	return v
}

// NextNull returns the identifier the next FreshNull call would allocate.
// A durable snapshot records it so that a restored database keeps allocating
// exactly where the original left off — replaying the same load sequence
// after recovery then reproduces the same null identifiers.
func (d *Database) NextNull() uint64 { return d.nextNull }

// ReserveNull marks ⊥id as used: FreshNull will never return it (or any
// smaller identifier) afterwards. The snapshot loader calls it when null
// tokens are mapped back verbatim instead of being freshly allocated.
func (d *Database) ReserveNull(id uint64) {
	if id >= d.nextNull {
		d.nextNull = id + 1
	}
}

// Consts returns the set Const(D) of constants occurring in the database,
// in deterministic order.
func (d *Database) Consts() []value.Value {
	seen := map[value.Value]bool{}
	var out []value.Value
	for _, name := range d.order {
		d.rels[name].eachStored(func(e *row) bool {
			for _, v := range e.t {
				if v.IsConst() && !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return value.OrderLess(out[i], out[j]) })
	return out
}

// NullIDs returns the identifiers of Null(D), sorted.
func (d *Database) NullIDs() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, name := range d.order {
		d.rels[name].eachStored(func(e *row) bool {
			for _, v := range e.t {
				if v.IsNull() && !seen[v.NullID()] {
					seen[v.NullID()] = true
					out = append(out, v.NullID())
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActiveDomain returns dom(D) = Const(D) ∪ Null(D), constants first, in
// deterministic order.
func (d *Database) ActiveDomain() []value.Value {
	out := d.Consts()
	for _, id := range d.NullIDs() {
		out = append(out, value.Null(id))
	}
	return out
}

// IsComplete reports whether the database has no nulls.
func (d *Database) IsComplete() bool {
	for _, name := range d.order {
		if d.rels[name].HasNulls() {
			return false
		}
	}
	return true
}

// Apply returns v(D): every relation with the valuation applied. When v
// covers all of Null(D), the result is a possible world of D under cwa.
func (d *Database) Apply(v value.Valuation) *Database {
	out := NewDatabase()
	for _, name := range d.order {
		out.Add(d.rels[name].Apply(v))
	}
	return out
}

// ApplyShared returns v(D) like Apply, but relations without nulls are
// shared with D by pointer instead of copied — a valuation cannot change
// them. The caller must treat the returned database as read-only (the
// oracle world loops do); Apply remains the right call when the world may
// be mutated or indexed independently of D. Fresh-null bookkeeping is
// skipped: worlds are evaluated, never extended.
func (d *Database) ApplyShared(v value.Valuation) *Database {
	out := &Database{rels: make(map[string]*Relation, len(d.rels)), order: d.order, nextNull: d.nextNull}
	for _, name := range d.order {
		r := d.rels[name]
		if r.HasNulls() {
			out.rels[name] = r.Apply(v)
		} else {
			out.rels[name] = r
		}
	}
	return out
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	out := NewDatabase()
	for _, name := range d.order {
		out.Add(d.rels[name].Clone())
	}
	out.nextNull = d.nextNull
	return out
}

// Equal reports whether both databases have the same relations with the
// same contents (bag equality), relation by relation.
func (d *Database) Equal(e *Database) bool {
	if len(d.rels) != len(e.rels) {
		return false
	}
	for name, r := range d.rels {
		s, ok := e.rels[name]
		if !ok || !r.Equal(s) {
			return false
		}
	}
	return true
}

// String renders all relations deterministically.
func (d *Database) String() string {
	var parts []string
	for _, name := range d.order {
		parts = append(parts, d.rels[name].String())
	}
	return strings.Join(parts, "\n")
}

// Codd returns the Codd-null transform codd(D) of Section 6 ("Marked
// nulls"): every null *occurrence* is replaced by a globally fresh null, so
// no null repeats — the standard reading of SQL's NULL as non-repeating
// marked nulls.
func Codd(d *Database) *Database {
	out := NewDatabase()
	next := uint64(1)
	for _, name := range d.order {
		src := d.rels[name]
		dst := New(src.name, src.attrs...)
		// Deterministic order so that renumbering is reproducible.
		for _, t := range src.Tuples() {
			m := src.Mult(t)
			nt := make(value.Tuple, len(t))
			for i, v := range t {
				if v.IsNull() {
					nt[i] = value.Null(next)
					next++
				} else {
					nt[i] = v
				}
			}
			dst.AddMult(nt, m)
		}
		out.Add(dst)
	}
	out.nextNull = next
	return out
}

// IsCoddDatabase reports whether no null id occurs more than once across
// the whole database (counting multiplicities as a single occurrence of the
// stored tuple).
func IsCoddDatabase(d *Database) bool {
	seen := map[uint64]bool{}
	for _, name := range d.order {
		repeated := false
		d.rels[name].eachStored(func(e *row) bool {
			for _, v := range e.t {
				if v.IsNull() {
					if seen[v.NullID()] {
						repeated = true
						return false
					}
					seen[v.NullID()] = true
				}
			}
			return true
		})
		if repeated {
			return false
		}
	}
	return true
}

// Homomorphic renaming support: RenameNulls applies a null-to-null renaming
// map to the whole database, used when comparing query results up to null
// renaming (e.g. for the codd(Q(D)) ≡ Q(codd(D)) experiments).
func (d *Database) RenameNulls(m map[uint64]uint64) *Database {
	out := NewDatabase()
	for _, name := range d.order {
		src := d.rels[name]
		dst := New(src.name, src.attrs...)
		src.Each(func(t value.Tuple, mult int) {
			nt := make(value.Tuple, len(t))
			for i, v := range t {
				if v.IsNull() {
					if id, ok := m[v.NullID()]; ok {
						nt[i] = value.Null(id)
						continue
					}
				}
				nt[i] = v
			}
			dst.AddMult(nt, mult)
		})
		out.Add(dst)
	}
	return out
}

// EqualUpToNullRenaming reports whether two relations are equal modulo a
// bijective renaming of nulls. It searches for a renaming by backtracking
// over the (small) null sets; intended for tests and experiments.
func EqualUpToNullRenaming(a, b *Relation) bool {
	if a.arity != b.arity || a.distinct != b.distinct {
		return false
	}
	idsOf := func(r *Relation) []uint64 {
		seen := map[uint64]bool{}
		var out []uint64
		r.eachStored(func(e *row) bool {
			for _, v := range e.t {
				if v.IsNull() && !seen[v.NullID()] {
					seen[v.NullID()] = true
					out = append(out, v.NullID())
				}
			}
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	aIDs, bIDs := idsOf(a), idsOf(b)
	if len(aIDs) != len(bIDs) {
		return false
	}
	used := make(map[uint64]bool, len(bIDs))
	ren := map[uint64]uint64{}
	var try func(i int) bool
	try = func(i int) bool {
		if i == len(aIDs) {
			// Check equality under ren; the first mismatching row refutes
			// the candidate renaming and stops the scan.
			ok := true
			a.eachStored(func(e *row) bool {
				nt := make(value.Tuple, len(e.t))
				for j, v := range e.t {
					if v.IsNull() {
						nt[j] = value.Null(ren[v.NullID()])
					} else {
						nt[j] = v
					}
				}
				if b.Mult(nt) != e.mult {
					ok = false
				}
				return ok
			})
			return ok
		}
		for _, cand := range bIDs {
			if used[cand] {
				continue
			}
			used[cand] = true
			ren[aIDs[i]] = cand
			if try(i + 1) {
				return true
			}
			used[cand] = false
		}
		return false
	}
	return try(0)
}
