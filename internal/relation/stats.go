package relation

import (
	"math/bits"

	"incdb/internal/value"
)

// Stats is a cheap statistics snapshot of one relation, computed in a
// single pass over the stored rows and cached on the mutation version. The
// counts are exact for the relation as stored — which makes them exact for
// every frozen null-free subplan input — and merely a conservative estimate
// for anything a valuation can still change: a world can collapse distinct
// tuples that differ only on nulls, never create new distinct values, so
// the stored counts upper-bound every world's.
type Stats struct {
	// Rows counts distinct stored tuples; Size counts tuple occurrences
	// (bag cardinality).
	Rows int
	Size int
	// ColDistinct[i] counts distinct values stored in column i (marked
	// nulls count as themselves); ColNulls[i] counts rows whose column i is
	// a null.
	ColDistinct []int
	ColNulls    []int
}

// statsSnap pins a computed Stats to the mutation version it was computed
// at; Stats() re-derives exactly when the version moves.
type statsSnap struct {
	version uint64
	stats   Stats
}

// Stats returns the relation's statistics snapshot, computing it on first
// use per mutation version. Concurrent readers of a stable relation may
// race on the first computation, which is idempotent (same reasoning as
// sortedRows and HasNulls).
func (r *Relation) Stats() Stats {
	if s := r.statsCache.Load(); s != nil && s.version == r.version {
		return s.stats
	}
	st := Stats{
		Rows:        r.distinct,
		ColDistinct: make([]int, r.arity),
		ColNulls:    make([]int, r.arity),
	}
	seen := make([]map[value.Value]struct{}, r.arity)
	for i := range seen {
		seen[i] = make(map[value.Value]struct{}, r.distinct)
	}
	for _, bucket := range r.rows {
		for _, e := range bucket {
			st.Size += e.mult
			for i, v := range e.t {
				if _, ok := seen[i][v]; !ok {
					seen[i][v] = struct{}{}
					st.ColDistinct[i]++
				}
				if v.IsNull() {
					st.ColNulls[i]++
				}
			}
		}
	}
	r.statsCache.Store(&statsSnap{version: r.version, stats: st})
	return st
}

// StatsEpoch buckets the relation's cardinality into its log₂ class. Plan
// caches fold it into their keys: a plan compiled for one cardinality class
// is reused until the relation roughly doubles or halves — coarse enough
// not to thrash the cache on every mutation, fine enough that growing past
// a join-order flip point recompiles.
func (r *Relation) StatsEpoch() uint64 {
	return uint64(bits.Len64(uint64(r.distinct)))
}
