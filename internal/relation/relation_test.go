package relation

import (
	"strings"
	"testing"

	"incdb/internal/value"
)

func tup(vs ...value.Value) value.Tuple { return value.T(vs...) }

func TestRelationAddContainsMult(t *testing.T) {
	r := New("R", "a", "b")
	if r.Arity() != 2 || r.Name() != "R" {
		t.Fatalf("basic accessors wrong")
	}
	r.Add(value.Consts("x", "y"))
	r.AddMult(value.Consts("x", "y"), 2)
	if got := r.Mult(value.Consts("x", "y")); got != 3 {
		t.Fatalf("Mult = %d, want 3", got)
	}
	if r.Len() != 1 || r.Size() != 3 {
		t.Fatalf("Len/Size = %d/%d", r.Len(), r.Size())
	}
	r.AddMult(value.Consts("x", "y"), -3)
	if r.Contains(value.Consts("x", "y")) {
		t.Fatalf("tuple should be gone after subtracting all multiplicity")
	}
	r.AddMult(value.Consts("q", "w"), -1)
	if r.Len() != 0 {
		t.Fatalf("negative add on absent tuple should be a no-op")
	}
}

func TestRelationArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New("R", "a").Add(value.Consts("x", "y"))
}

func TestAttrIndex(t *testing.T) {
	r := New("R", "a", "b", "c")
	if r.AttrIndex("b") != 1 || r.AttrIndex("zz") != -1 {
		t.Fatalf("AttrIndex wrong")
	}
}

func TestSetMult(t *testing.T) {
	r := New("R", "a")
	r.SetMult(value.Consts("x"), 5)
	if r.Mult(value.Consts("x")) != 5 {
		t.Fatalf("SetMult failed")
	}
	r.SetMult(value.Consts("x"), 0)
	if r.Contains(value.Consts("x")) {
		t.Fatalf("SetMult 0 should remove")
	}
}

func TestTuplesDeterministicOrder(t *testing.T) {
	r := New("R", "a")
	r.Add(value.Consts("b"))
	r.Add(value.Consts("a"))
	r.Add(tup(value.Null(2)))
	r.Add(tup(value.Null(1)))
	ts := r.Tuples()
	want := []string{"(a)", "(b)", "(⊥1)", "(⊥2)"}
	for i, w := range want {
		if ts[i].String() != w {
			t.Fatalf("order[%d] = %v, want %s", i, ts[i], w)
		}
	}
}

func TestNormalizeAndEqualSet(t *testing.T) {
	r := New("R", "a")
	r.AddMult(value.Consts("x"), 3)
	s := New("S", "a")
	s.Add(value.Consts("x"))
	if r.Equal(s) {
		t.Fatalf("bag equality should fail on different multiplicities")
	}
	if !r.EqualSet(s) {
		t.Fatalf("set equality should hold")
	}
	r.Normalize()
	if !r.Equal(s) {
		t.Fatalf("after Normalize bag equality should hold")
	}
}

func TestSubsetOfSet(t *testing.T) {
	r := FromTuples("R", 1, value.Consts("a"))
	s := FromTuples("S", 1, value.Consts("a"), value.Consts("b"))
	if !r.SubsetOfSet(s) || s.SubsetOfSet(r) {
		t.Fatalf("SubsetOfSet wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := New("R", "a")
	r.Add(value.Consts("x"))
	c := r.Clone()
	c.Add(value.Consts("y"))
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatalf("Clone not independent")
	}
}

func TestApplyValuationMergesMultiplicities(t *testing.T) {
	r := New("R", "a")
	r.Add(tup(value.Null(1)))
	r.Add(value.Consts("c"))
	v := value.NewValuation()
	v.Set(1, value.Const("c"))
	got := r.Apply(v)
	if got.Len() != 1 || got.Mult(value.Consts("c")) != 2 {
		t.Fatalf("Apply should merge: %v", got)
	}
}

func TestRelationStringStable(t *testing.T) {
	r := New("R", "a", "b")
	r.Add(value.Consts("x", "y"))
	r.AddMult(tup(value.Null(1), value.Const("z")), 2)
	s := r.String()
	if !strings.Contains(s, "R(a, b)") || !strings.Contains(s, "×2") {
		t.Fatalf("String = %q", s)
	}
}

func TestDatabaseBasics(t *testing.T) {
	d := NewDatabase()
	r := New("R", "a")
	r.Add(tup(value.Null(5)))
	r.Add(value.Consts("c1"))
	d.Add(r)
	s := New("S", "x", "y")
	s.Add(tup(value.Const("c2"), value.Null(3)))
	d.Add(s)

	if d.Arity("R") != 1 || d.Arity("S") != 2 || d.Arity("nope") != -1 {
		t.Fatalf("Arity lookup wrong")
	}
	if got := d.Names(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Fatalf("Names = %v", got)
	}
	consts := d.Consts()
	if len(consts) != 2 || consts[0] != value.Const("c1") || consts[1] != value.Const("c2") {
		t.Fatalf("Consts = %v", consts)
	}
	ids := d.NullIDs()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 5 {
		t.Fatalf("NullIDs = %v", ids)
	}
	adom := d.ActiveDomain()
	if len(adom) != 4 || adom[2] != value.Null(3) {
		t.Fatalf("ActiveDomain = %v", adom)
	}
	if d.IsComplete() {
		t.Fatalf("database with nulls is not complete")
	}
	// Fresh nulls must avoid existing ids.
	f := d.FreshNull()
	if f.NullID() <= 5 {
		t.Fatalf("FreshNull = %v should exceed existing ids", f)
	}
}

func TestMustRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewDatabase().MustRelation("missing")
}

func TestDatabaseApplyAndComplete(t *testing.T) {
	d := NewDatabase()
	r := New("R", "a")
	r.Add(tup(value.Null(1)))
	d.Add(r)
	v := value.NewValuation()
	v.Set(1, value.Const("k"))
	w := d.Apply(v)
	if !w.IsComplete() {
		t.Fatalf("applying a total valuation should complete the db")
	}
	if !w.MustRelation("R").Contains(value.Consts("k")) {
		t.Fatalf("valuation not applied")
	}
	// original untouched
	if d.IsComplete() {
		t.Fatalf("Apply must not mutate the source")
	}
}

func TestDatabaseEqual(t *testing.T) {
	mk := func() *Database {
		d := NewDatabase()
		r := New("R", "a")
		r.Add(value.Consts("x"))
		d.Add(r)
		return d
	}
	a, b := mk(), mk()
	if !a.Equal(b) {
		t.Fatalf("identical databases should be Equal")
	}
	b.MustRelation("R").Add(value.Consts("y"))
	if a.Equal(b) {
		t.Fatalf("databases with different contents should differ")
	}
}

func TestCoddTransform(t *testing.T) {
	d := NewDatabase()
	r := New("R", "a", "b")
	r.Add(tup(value.Null(1), value.Null(1))) // repeated marked null
	r.Add(tup(value.Null(2), value.Const("c")))
	d.Add(r)
	cd := Codd(d)
	if !IsCoddDatabase(cd) {
		t.Fatalf("Codd output must have non-repeating nulls")
	}
	if IsCoddDatabase(d) {
		t.Fatalf("source has a repeated null; IsCoddDatabase should be false")
	}
	if cd.MustRelation("R").Len() != 2 {
		t.Fatalf("Codd must preserve tuple count")
	}
	// The repeated null became two distinct nulls.
	for _, tpl := range cd.MustRelation("R").Tuples() {
		if tpl[0].IsNull() && tpl[1].IsNull() && tpl[0] == tpl[1] {
			t.Fatalf("Codd left a repeated null in %v", tpl)
		}
	}
}

func TestRenameNulls(t *testing.T) {
	d := NewDatabase()
	r := New("R", "a")
	r.Add(tup(value.Null(1)))
	d.Add(r)
	e := d.RenameNulls(map[uint64]uint64{1: 9})
	if !e.MustRelation("R").Contains(tup(value.Null(9))) {
		t.Fatalf("rename failed: %v", e)
	}
}

func TestEqualUpToNullRenaming(t *testing.T) {
	a := FromTuples("A", 2, tup(value.Null(1), value.Null(1)), tup(value.Null(2), value.Const("c")))
	b := FromTuples("B", 2, tup(value.Null(7), value.Null(7)), tup(value.Null(4), value.Const("c")))
	if !EqualUpToNullRenaming(a, b) {
		t.Fatalf("should be equal up to renaming")
	}
	c := FromTuples("C", 2, tup(value.Null(7), value.Null(8)), tup(value.Null(4), value.Const("c")))
	if EqualUpToNullRenaming(a, c) {
		t.Fatalf("repetition pattern differs; should not be equal")
	}
}

func TestFreshNullAdvancesOnAdd(t *testing.T) {
	d := NewDatabase()
	r := New("R", "a")
	d.Add(r)
	n1 := d.FreshNull()
	r2 := New("S", "a")
	r2.Add(tup(value.Null(100)))
	d.Add(r2)
	n2 := d.FreshNull()
	if n2.NullID() <= 100 || n1.NullID() >= 100 {
		t.Fatalf("fresh null allocation must account for added relations: %v %v", n1, n2)
	}
}
