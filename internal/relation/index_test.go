package relation

import (
	"testing"

	"incdb/internal/value"
)

func collectMatches(r *Relation, col int, v value.Value) (ts []value.Tuple, mults []int) {
	r.EachMatch(col, v, func(t value.Tuple, m int) {
		ts = append(ts, t)
		mults = append(mults, m)
	})
	return
}

// scanMatches is the reference: a full scan in deterministic order.
func scanMatches(r *Relation, col int, v value.Value) (ts []value.Tuple, mults []int) {
	r.Each(func(t value.Tuple, m int) {
		if t[col] == v {
			ts = append(ts, t)
			mults = append(mults, m)
		}
	})
	return
}

func sameMatches(at []value.Tuple, am []int, bt []value.Tuple, bm []int) bool {
	if len(at) != len(bt) {
		return false
	}
	for i := range at {
		if !at[i].Equal(bt[i]) || am[i] != bm[i] {
			return false
		}
	}
	return true
}

func TestEachMatchAgreesWithScan(t *testing.T) {
	r := New("R", "a", "b")
	r.Add(value.Consts("x", "1"))
	r.Add(value.Consts("x", "2"))
	r.AddMult(value.Consts("y", "1"), 3)
	r.Add(value.T(value.Null(7), value.Const("z")))
	for col := 0; col < 2; col++ {
		for _, probe := range []value.Value{value.Const("x"), value.Const("y"),
			value.Const("1"), value.Null(7), value.Const("missing")} {
			it, im := collectMatches(r, col, probe)
			st, sm := scanMatches(r, col, probe)
			if !sameMatches(it, im, st, sm) {
				t.Errorf("col %d probe %s: index %v/%v vs scan %v/%v", col, probe, it, im, st, sm)
			}
		}
	}
	if got := r.MatchCount(0, value.Const("x")); got != 2 {
		t.Errorf("MatchCount = %d, want 2", got)
	}
}

func TestIndexInvalidatedByAdd(t *testing.T) {
	r := New("R", "a")
	r.Add(value.Consts("x"))
	if got, _ := collectMatches(r, 0, value.Const("x")); len(got) != 1 {
		t.Fatalf("before Add: %d matches", len(got))
	}
	// The index is now built; mutating must invalidate it.
	r.AddMult(value.Consts("x"), 1) // bumps multiplicity of the same row
	r.Add(value.Consts("y"))
	if got := r.MatchCount(0, value.Const("y")); got != 1 {
		t.Errorf("after Add: y matches = %d, want 1", got)
	}
	_, mults := collectMatches(r, 0, value.Const("x"))
	if len(mults) != 1 || mults[0] != 2 {
		t.Errorf("after AddMult: x mults = %v, want [2]", mults)
	}
	r.SetMult(value.Consts("y"), 0) // deletes the row
	if got := r.MatchCount(0, value.Const("y")); got != 0 {
		t.Errorf("after SetMult 0: y matches = %d, want 0", got)
	}
}

func TestIndexSurvivesNormalize(t *testing.T) {
	r := New("R", "a")
	r.AddMult(value.Consts("x"), 5)
	if _, mults := collectMatches(r, 0, value.Const("x")); mults[0] != 5 {
		t.Fatalf("mult = %v, want 5", mults)
	}
	r.Normalize() // keeps rows, so index row pointers stay valid
	if _, mults := collectMatches(r, 0, value.Const("x")); mults[0] != 1 {
		t.Errorf("after Normalize: mult = %v, want 1", mults)
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EachMatch on bad column did not panic")
		}
	}()
	r := New("R", "a")
	r.EachMatch(3, value.Const("x"), func(value.Tuple, int) {})
}
