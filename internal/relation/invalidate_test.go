package relation

import (
	"testing"

	"incdb/internal/value"
)

// Mutating a relation from inside an EachMatch iteration must invalidate
// both derived structures — the per-column hash index and the sorted row
// snapshot — so that the next lookup and the next deterministic iteration
// both see the new row. (The in-flight iteration itself walks the bucket it
// captured; only subsequent calls observe the mutation.)
func TestMutationDuringEachMatchInvalidatesIndexAndSnapshot(t *testing.T) {
	r := New("R", "a", "b")
	r.Add(value.Consts("x", "1"))
	r.Add(value.Consts("x", "2"))
	r.Add(value.Consts("y", "3"))

	// Force both lazy structures into existence.
	_ = r.Tuples()
	r.EachMatch(0, value.Const("x"), func(value.Tuple, int) {})
	if r.idx == nil || r.idx[0] == nil {
		t.Fatalf("column index not built")
	}
	if r.sorted.Load() == nil {
		t.Fatalf("sorted snapshot not built")
	}

	added := false
	r.EachMatch(0, value.Const("x"), func(tu value.Tuple, _ int) {
		if !added {
			added = true
			r.Add(value.Consts("x", "0"))
		}
	})
	if !added {
		t.Fatalf("EachMatch visited nothing")
	}
	if r.idx != nil {
		t.Fatalf("mutation during EachMatch left the column index alive")
	}
	if r.sorted.Load() != nil {
		t.Fatalf("mutation during EachMatch left the sorted snapshot alive")
	}

	// The rebuilt index sees the new row…
	var matches []value.Tuple
	r.EachMatch(0, value.Const("x"), func(tu value.Tuple, _ int) {
		matches = append(matches, tu)
	})
	if len(matches) != 3 {
		t.Fatalf("rebuilt index returned %d matches, want 3", len(matches))
	}
	if !matches[0].Equal(value.Consts("x", "0")) {
		t.Fatalf("rebuilt index not in sorted order: first match %v", matches[0])
	}
	// …and so does the rebuilt snapshot, in sorted position.
	ts := r.Tuples()
	if len(ts) != 4 || !ts[0].Equal(value.Consts("x", "0")) {
		t.Fatalf("rebuilt snapshot wrong: %v", ts)
	}
}

// A mutation that only touches multiplicities through Normalize keeps both
// structures (row pointers make the update visible through them), while any
// Add/AddMult/SetMult — including no-op ones — conservatively drops them.
func TestInvalidationGranularity(t *testing.T) {
	r := New("R", "a")
	r.AddMult(value.Consts("p"), 3)
	r.AddMult(value.Consts("q"), 1)
	_ = r.Tuples()
	r.EachMatch(0, value.Const("p"), func(value.Tuple, int) {})

	r.Normalize()
	if r.idx == nil || r.sorted.Load() == nil {
		t.Fatalf("Normalize must not drop derived structures")
	}
	if got := r.Mult(value.Consts("p")); got != 1 {
		t.Fatalf("Normalize: mult = %d", got)
	}

	r.SetMult(value.Consts("p"), 5)
	if r.idx != nil || r.sorted.Load() != nil {
		t.Fatalf("SetMult must invalidate derived structures")
	}
}
