package relation

import (
	"testing"

	"incdb/internal/value"
)

func TestStatsCountsAndCaching(t *testing.T) {
	r := New("R", "a", "b")
	r.AddMult(value.T(value.Const("x"), value.Int(1)), 2)
	r.Add(value.T(value.Const("x"), value.Int(2)))
	r.Add(value.T(value.Const("y"), value.Null(7)))
	r.Add(value.T(value.Null(7), value.Null(7)))

	st := r.Stats()
	if st.Rows != 4 || st.Size != 5 {
		t.Fatalf("Rows=%d Size=%d, want 4 distinct / 5 occurrences", st.Rows, st.Size)
	}
	// Column a holds x, x, y, ⊥7 → 3 distinct (the null counts as itself).
	if st.ColDistinct[0] != 3 || st.ColDistinct[1] != 3 {
		t.Fatalf("ColDistinct=%v, want [3 3]", st.ColDistinct)
	}
	if st.ColNulls[0] != 1 || st.ColNulls[1] != 2 {
		t.Fatalf("ColNulls=%v, want [1 2]", st.ColNulls)
	}

	// The snapshot is cached per mutation version: same version, same block;
	// a mutation re-derives.
	if again := r.Stats(); &again.ColDistinct[0] != &st.ColDistinct[0] {
		t.Fatal("stable relation recomputed its stats snapshot")
	}
	r.Add(value.T(value.Const("z"), value.Int(9)))
	st2 := r.Stats()
	if st2.Rows != 5 || st2.ColDistinct[0] != 4 {
		t.Fatalf("post-mutation stats stale: %+v", st2)
	}
}

func TestStatsEpochBuckets(t *testing.T) {
	r := NewArity("R", 1)
	if e := r.StatsEpoch(); e != 0 {
		t.Fatalf("empty relation epoch = %d, want 0", e)
	}
	prev := r.StatsEpoch()
	flips := 0
	for i := 0; i < 100; i++ {
		r.Add(value.T(value.Int(i)))
		if e := r.StatsEpoch(); e != prev {
			if e != prev+1 {
				t.Fatalf("epoch jumped %d → %d at %d rows", prev, e, r.Len())
			}
			// Epochs are log₂ classes: flips land exactly at powers of two.
			if n := r.Len(); n&(n-1) != 0 {
				t.Fatalf("epoch flipped at %d rows (not a power of two)", n)
			}
			prev = e
			flips++
		}
	}
	if flips != 7 { // 1, 2, 4, 8, 16, 32, 64
		t.Fatalf("saw %d epoch flips over 100 rows, want 7", flips)
	}
}
