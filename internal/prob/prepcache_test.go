package prob

import (
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/plan"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// TestMuWithPrepCache: µ and µᵏ through a shared prepared-plan cache match
// the one-shot path, warm and cold.
func TestMuWithPrepCache(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.Consts("c1", "c2"))
	r.Add(value.T(db.FreshNull(), value.Const("c2")))
	db.Add(r)

	q := algebra.Proj(algebra.Sel(algebra.R("R"), algebra.CEqC(1, value.Const("c2"))), 0)
	tuple := value.Consts("c1")
	cache := plan.NewPrepCache(4)
	opts := Options{Prep: cache}

	for _, stage := range []string{"cold", "warm"} {
		want, err := Mu(db, q, nil, tuple)
		if err != nil {
			t.Fatalf("%s: Mu: %v", stage, err)
		}
		got, err := MuOpts(db, q, nil, tuple, opts)
		if err != nil {
			t.Fatalf("%s: MuOpts: %v", stage, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("%s: MuOpts = %v, Mu = %v", stage, got, want)
		}
		wantK, err := MuK(db, q, nil, tuple, 4)
		if err != nil {
			t.Fatalf("%s: MuK: %v", stage, err)
		}
		gotK, err := MuKOpts(db, q, nil, tuple, 4, opts)
		if err != nil {
			t.Fatalf("%s: MuKOpts: %v", stage, err)
		}
		if gotK.Cmp(wantK) != 0 {
			t.Fatalf("%s: MuKOpts = %v, MuK = %v", stage, gotK, wantK)
		}
	}
	if st := cache.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache not exercised: %+v", st)
	}
}
