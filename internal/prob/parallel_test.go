package prob

import (
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/constraint"
	"incdb/internal/engine"
	"incdb/internal/relation"
	"incdb/internal/value"
)

func probDB(nulls int) *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	r.Add(value.Consts("2"))
	db.Add(r)
	s := relation.New("S", "a")
	for i := 0; i < nulls; i++ {
		s.Add(value.T(db.FreshNull()))
	}
	db.Add(s)
	return db
}

// TestMuKWithMatchesSerial shards the kⁿ counter and checks the rational is
// bit-identical to the serial count, with and without constraints.
func TestMuKWithMatchesSerial(t *testing.T) {
	db := probDB(3)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	sigma := constraint.Set{constraint.IND{R1: "S", Cols1: []int{0}, R2: "R", Cols2: []int{0}}}
	tuple := value.Consts("1")
	for _, k := range []int{4, 9} {
		for _, sg := range []constraint.Set{nil, sigma} {
			serial, err := MuKWith(db, q, sg, tuple, k, engine.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := MuKWith(db, q, sg, tuple, k, engine.Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if serial.Cmp(parallel) != 0 {
				t.Errorf("k=%d sigma=%v: serial %s vs parallel %s", k, sg != nil, serial, parallel)
			}
		}
	}
}

// TestMuWithMatchesSerial shards the pattern enumeration on the first
// null's branch and checks the asymptotic µ is unchanged.
func TestMuWithMatchesSerial(t *testing.T) {
	db := probDB(3)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	sigma := constraint.Set{constraint.IND{R1: "S", Cols1: []int{0}, R2: "R", Cols2: []int{0}}}
	tuple := value.Consts("1")
	for _, sg := range []constraint.Set{nil, sigma} {
		serial, err := MuWith(db, q, sg, tuple, engine.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := MuWith(db, q, sg, tuple, engine.Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if serial.Cmp(parallel) != 0 {
			t.Errorf("sigma=%v: serial %s vs parallel %s", sg != nil, serial, parallel)
		}
	}
	// Null-free database: the single empty valuation, any worker count.
	empty := probDB(0)
	serial, err := MuWith(empty, q, nil, tuple, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MuWith(empty, q, nil, tuple, engine.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cmp(parallel) != 0 {
		t.Errorf("no-null db: serial %s vs parallel %s", serial, parallel)
	}
}
