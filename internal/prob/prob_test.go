package prob

import (
	"math/big"
	"math/rand"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/constraint"
	"incdb/internal/gen"
	"incdb/internal/relation"
	"incdb/internal/value"
)

func n(id uint64) value.Value { return value.Null(id) }

func rat(p, q int64) *big.Rat { return big.NewRat(p, q) }

// The running example: R = {1}, S = {⊥}; naive eval of R−S gives {1} and
// indeed µ = 1: the chance of ⊥ hitting 1 vanishes.
func TestDifferenceAlmostCertainlyTrue(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.T(n(1)))
	db.Add(s)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	mu, err := Mu(db, q, nil, value.Consts("1"))
	if err != nil {
		t.Fatal(err)
	}
	if mu.Cmp(rat(1, 1)) != 0 {
		t.Fatalf("µ = %v, want 1", mu)
	}
	// µᵏ = (k−1)/k: exactly one of k choices for ⊥ kills the answer.
	for _, k := range []int{2, 3, 5, 10} {
		muk, err := MuK(db, q, nil, value.Consts("1"), k)
		if err != nil {
			t.Fatal(err)
		}
		if muk.Cmp(rat(int64(k-1), int64(k))) != 0 {
			t.Fatalf("µ%d = %v, want %d/%d", k, muk, k-1, k)
		}
	}
}

// Theorem 4.10 as a property test: µ(Q, D, ā) = 1 iff ā ∈ Qnaïve(D), and
// µ = 0 otherwise — the 0–1 law.
func TestTheorem410ZeroOneLaw(t *testing.T) {
	r := rand.New(rand.NewSource(410))
	cfg := gen.DefaultConfig()
	cfg.MaxTuples = 3
	qcfg := gen.DefaultQueryConfig()
	qcfg.MaxDepth = 2
	for trial := 0; trial < 80; trial++ {
		db := gen.DB(r, cfg)
		if len(db.NullIDs()) > 4 {
			continue
		}
		q := gen.Query(r, qcfg, 1)
		naive := algebra.Naive(db, q)
		// Check over candidate tuples from the active domain.
		for _, v := range db.ActiveDomain() {
			tuple := value.T(v)
			mu, err := Mu(db, q, nil, tuple)
			if err != nil {
				t.Fatal(err)
			}
			inNaive := naive.Contains(tuple)
			switch {
			case inNaive && mu.Cmp(rat(1, 1)) != 0:
				t.Fatalf("trial %d: %v ∈ naive but µ = %v\nQ = %s\nD = %v", trial, tuple, mu, q, db)
			case !inNaive && mu.Sign() != 0:
				t.Fatalf("trial %d: %v ∉ naive but µ = %v\nQ = %s\nD = %v", trial, tuple, mu, q, db)
			}
		}
	}
}

// µᵏ must converge to µ: for large k the gap |µᵏ − µ| shrinks.
func TestMuKConvergesToMu(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cfg := gen.DefaultConfig()
	cfg.MaxTuples = 2
	qcfg := gen.DefaultQueryConfig()
	qcfg.MaxDepth = 2
	for trial := 0; trial < 20; trial++ {
		db := gen.DB(r, cfg)
		ids := db.NullIDs()
		if len(ids) == 0 || len(ids) > 3 {
			continue
		}
		q := gen.Query(r, qcfg, 1)
		adom := db.ActiveDomain()
		tuple := value.T(adom[r.Intn(len(adom))])
		mu, err := Mu(db, q, nil, tuple)
		if err != nil {
			t.Fatal(err)
		}
		rel := relevantConsts(db, q, tuple)
		prevGap := new(big.Rat)
		first := true
		for _, k := range []int{len(rel) + 2, len(rel) + 6, len(rel) + 12} {
			muk, err := MuK(db, q, nil, tuple, k)
			if err != nil {
				t.Fatal(err)
			}
			gap := new(big.Rat).Sub(muk, mu)
			gap.Abs(gap)
			if !first && gap.Cmp(prevGap) > 0 {
				t.Fatalf("trial %d: gap grew from %v to %v at k=%d\nQ = %s\nD = %v",
					trial, prevGap, gap, k, q, db)
			}
			prevGap, first = gap, false
		}
	}
}

// The Section 4.3 inclusion-constraint example: T = {1,2}, S = {⊥} with
// Σ: S ⊆ T. The answer {1} to T−S has conditional probability exactly 1/2.
func TestConditionalHalf(t *testing.T) {
	db := relation.NewDatabase()
	tt := relation.New("T", "a")
	tt.Add(value.Consts("1"))
	tt.Add(value.Consts("2"))
	db.Add(tt)
	s := relation.New("S", "a")
	s.Add(value.T(n(1)))
	db.Add(s)
	sigma := constraint.Set{constraint.IND{R1: "S", Cols1: []int{0}, R2: "T", Cols2: []int{0}}}
	q := algebra.Minus(algebra.R("T"), algebra.R("S"))
	mu, err := Mu(db, q, sigma, value.Consts("1"))
	if err != nil {
		t.Fatal(err)
	}
	if mu.Cmp(rat(1, 2)) != 0 {
		t.Fatalf("µ(1 ∈ T−S | S⊆T) = %v, want 1/2", mu)
	}
	// Without the constraint, µ = 1 (⊥ almost surely misses 1).
	mu0, err := Mu(db, q, nil, value.Consts("1"))
	if err != nil {
		t.Fatal(err)
	}
	if mu0.Cmp(rat(1, 1)) != 0 {
		t.Fatalf("unconditional µ = %v, want 1", mu0)
	}
}

// Theorem 4.11's second part: every rational p/r arises. Realize p/r with
// T = {1..r}, P = {1..p}, S = {⊥}, Σ: S ⊆ T, Q = ∃x (S(x) ∧ P(x)).
func TestConditionalRealizesRationals(t *testing.T) {
	for _, pr := range [][2]int{{1, 3}, {2, 3}, {3, 5}, {1, 4}, {5, 7}} {
		p, r := pr[0], pr[1]
		db := relation.NewDatabase()
		tt := relation.New("T", "a")
		pp := relation.New("P", "a")
		for i := 1; i <= r; i++ {
			tt.Add(value.T(value.Int(i)))
			if i <= p {
				pp.Add(value.T(value.Int(i)))
			}
		}
		db.Add(tt)
		db.Add(pp)
		s := relation.New("S", "a")
		s.Add(value.T(db.FreshNull()))
		db.Add(s)
		sigma := constraint.Set{constraint.IND{R1: "S", Cols1: []int{0}, R2: "T", Cols2: []int{0}}}
		// Boolean query ∃x (S(x) ∧ P(x)) as π∅(S ∩ P).
		q := algebra.Proj(algebra.Inter(algebra.R("S"), algebra.R("P")))
		mu, err := Mu(db, q, sigma, value.Tuple{})
		if err != nil {
			t.Fatal(err)
		}
		if mu.Cmp(rat(int64(p), int64(r))) != 0 {
			t.Fatalf("µ = %v, want %d/%d", mu, p, r)
		}
	}
}

// For FDs, µ(Q|Σ, D, ā) = µ(Q, D_Σ, ā) where D_Σ is the chase (§4.3).
func TestFDConditionalEqualsChased(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "k", "v")
	r.Add(value.T(value.Const("1"), n(1)))
	r.Add(value.Consts("1", "a"))
	r.Add(value.T(value.Const("2"), n(2)))
	db.Add(r)
	sigma := constraint.Set{constraint.FD{Rel: "R", LHS: []int{0}, RHS: []int{1}}}
	fds, _ := sigma.FDs()
	chased, ok := constraint.Chase(db, fds)
	if !ok {
		t.Fatalf("chase must succeed")
	}
	q := algebra.Proj(algebra.R("R"), 1)
	for _, tuple := range []value.Tuple{value.Consts("a"), value.T(n(2)), value.Consts("zz")} {
		muCond, err := Mu(db, q, sigma, tuple)
		if err != nil {
			t.Fatal(err)
		}
		muChase, err := Mu(chased, q, nil, tuple)
		if err != nil {
			t.Fatal(err)
		}
		if muCond.Cmp(muChase) != 0 {
			t.Fatalf("tuple %v: µ(Q|Σ,D) = %v but µ(Q,D_Σ) = %v", tuple, muCond, muChase)
		}
	}
}

// Conditional µ over random instances must match the finite-k counting for
// growing k (the pattern computation agrees with brute force).
func TestMuMatchesMuKAsymptotics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cfg := gen.DefaultConfig()
	cfg.MaxTuples = 2
	cfg.NullPool = 2
	qcfg := gen.DefaultQueryConfig()
	qcfg.MaxDepth = 1
	sigma := constraint.Set{constraint.IND{R1: "S", Cols1: []int{0}, R2: "R", Cols2: []int{0}}}
	for trial := 0; trial < 25; trial++ {
		db := gen.DB(r, cfg)
		ids := db.NullIDs()
		if len(ids) == 0 || len(ids) > 3 {
			continue
		}
		q := gen.Query(r, qcfg, 1)
		adom := db.ActiveDomain()
		tuple := value.T(adom[r.Intn(len(adom))])
		mu, err := Mu(db, q, sigma, tuple)
		if err != nil {
			t.Fatal(err)
		}
		rel := relevantConsts(db, q, tuple)
		// µᵏ − µ must be O(1/k): check the gap at two growing k values.
		k1, k2 := len(rel)+8, len(rel)+16
		mu1, err := MuK(db, q, sigma, tuple, k1)
		if err != nil {
			t.Fatal(err)
		}
		mu2, err := MuK(db, q, sigma, tuple, k2)
		if err != nil {
			t.Fatal(err)
		}
		g1 := new(big.Rat).Sub(mu1, mu)
		g1.Abs(g1)
		g2 := new(big.Rat).Sub(mu2, mu)
		g2.Abs(g2)
		if g2.Cmp(g1) > 0 {
			t.Fatalf("trial %d: |µᵏ−µ| grew: %v at k=%d, %v at k=%d\nQ = %s\nD = %v",
				trial, g1, k1, g2, k2, q, db)
		}
		// And the k² gap must be small in absolute terms: < 1/2 generously.
		if g2.Cmp(rat(1, 2)) > 0 {
			t.Fatalf("trial %d: µᵏ far from µ: %v vs %v", trial, mu2, mu)
		}
	}
}

func TestSuppCount(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.T(n(1)))
	db.Add(s)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	sat, total, err := SuppCount(db, q, nil, value.Consts("1"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if total != 4 || sat != 3 {
		t.Fatalf("SuppCount = %d/%d, want 3/4", sat, total)
	}
}

func TestGuards(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	for i := 0; i < MaxNulls+1; i++ {
		r.Add(value.T(value.Null(uint64(i + 1))))
	}
	db.Add(r)
	if _, err := Mu(db, algebra.R("R"), nil, value.Consts("1")); err == nil {
		t.Fatalf("expected MaxNulls guard")
	}
	// k below |R| is rejected.
	db2 := relation.NewDatabase()
	r2 := relation.New("R", "a")
	r2.Add(value.Consts("1"))
	r2.Add(value.Consts("2"))
	r2.Add(value.T(n(1)))
	db2.Add(r2)
	if _, err := MuK(db2, algebra.R("R"), nil, value.Consts("1"), 1); err == nil {
		t.Fatalf("expected k < |R| error")
	}
}

// An unsatisfiable constraint set yields µ = 0 by convention.
func TestUnsatisfiableSigma(t *testing.T) {
	db := relation.NewDatabase()
	s := relation.New("S", "a")
	s.Add(value.T(n(1)))
	db.Add(s)
	// S ⊆ E where E is empty: no valuation satisfies it.
	db.Add(relation.New("E", "a"))
	sigma := constraint.Set{constraint.IND{R1: "S", Cols1: []int{0}, R2: "E", Cols2: []int{0}}}
	mu, err := Mu(db, algebra.R("S"), sigma, value.T(n(1)))
	if err != nil {
		t.Fatal(err)
	}
	if mu.Sign() != 0 {
		t.Fatalf("µ = %v, want 0 by convention", mu)
	}
}
