// Package prob implements the probabilistic framework of Section 4.3 of
// the paper: the probability µ(Q, D, ā) that a randomly chosen valuation
// witnesses ā as an answer, its finite restrictions µᵏ over valuations
// into {c₁,…,c_k}, and the conditional probability µ(Q|Σ, D, ā) under
// integrity constraints Σ.
//
// All probabilities are exact rationals (math/big). The asymptotic values
// are computed symbolically by enumerating *patterns*: a pattern assigns
// each null either a relevant constant (one occurring in D, Q or Σ) or an
// anonymous fresh class; all valuations realizing the same pattern agree
// on the events of interest (genericity), and a pattern with m fresh
// classes is realized by (k−|R|)(k−|R|−1)⋯(k−|R|−m+1) valuations into
// {c₁,…,c_k}. Both µᵏ numerator and denominator are therefore polynomials
// in k, and the limit is the ratio of their leading coefficients —
// Theorem 4.10's 0–1 law and Theorem 4.11's rational convergence both fall
// out of this computation.
package prob

import (
	"fmt"
	"math/big"
	"strconv"

	"incdb/internal/algebra"
	"incdb/internal/constraint"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// MaxNulls bounds the pattern/valuation enumerations; both are exponential
// in the number of nulls (computing µ exactly is FP^#P-hard, Section 4.3).
const MaxNulls = 8

// relevantConsts collects R = Const(D) ∪ consts(Q) ∪ consts(ā).
func relevantConsts(db *relation.Database, q algebra.Expr, tuple value.Tuple) []value.Value {
	seen := map[value.Value]bool{}
	var out []value.Value
	add := func(v value.Value) {
		if v.IsConst() && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, c := range db.Consts() {
		add(c)
	}
	for _, c := range algebra.ConstsOf(q) {
		add(c)
	}
	for _, v := range tuple {
		add(v)
	}
	return out
}

// freshConsts returns m constants outside the avoid set.
func freshConsts(m int, avoid []value.Value) []value.Value {
	have := map[value.Value]bool{}
	for _, v := range avoid {
		have[v] = true
	}
	var out []value.Value
	for i := 0; len(out) < m; i++ {
		c := value.Const("✶" + strconv.Itoa(i))
		if !have[c] {
			out = append(out, c)
		}
	}
	return out
}

// MuK computes µᵏ(Q|Σ, D, ā): the fraction of valuations v with range in
// {c₁,…,c_k} that satisfy v(D) ⊨ Σ and v(ā) ∈ Q(v(D)), among those
// satisfying Σ. A nil Σ is the unconditional µᵏ of (the display before)
// Theorem 4.10. The first k constants are taken as the relevant constants
// R followed by fresh ones; k must be at least |R| for the value to be
// enumeration-independent, and the enumeration costs kⁿ worlds.
func MuK(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple, k int) (*big.Rat, error) {
	ids := db.NullIDs()
	if len(ids) > MaxNulls {
		return nil, fmt.Errorf("prob: %d nulls exceed MaxNulls=%d", len(ids), MaxNulls)
	}
	rel := relevantConsts(db, q, tuple)
	if k < len(rel) {
		return nil, fmt.Errorf("prob: k=%d below |R|=%d; µᵏ would depend on the enumeration", k, len(rel))
	}
	rng := append(append([]value.Value{}, rel...), freshConsts(k-len(rel), rel)...)
	num, den := 0, 0
	v := value.NewValuation()
	var rec func(i int)
	rec = func(i int) {
		if i == len(ids) {
			world := db.Apply(v)
			if sigma != nil && !sigma.Holds(world) {
				return
			}
			den++
			if algebra.Eval(world, q, algebra.ModeNaive).Contains(v.Apply(tuple)) {
				num++
			}
			return
		}
		for _, c := range rng {
			v.Set(ids[i], c)
			rec(i + 1)
		}
	}
	rec(0)
	if den == 0 {
		return big.NewRat(0, 1), nil
	}
	return big.NewRat(int64(num), int64(den)), nil
}

// Mu computes the asymptotic µ(Q|Σ, D, ā) = lim_k µᵏ exactly, by pattern
// enumeration. With nil Σ the result is 0 or 1 (Theorem 4.10); with
// constraints it is an arbitrary rational in [0,1] (Theorem 4.11). The
// convention µ = 0 applies when no valuation satisfies Σ.
func Mu(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple) (*big.Rat, error) {
	ids := db.NullIDs()
	if len(ids) > MaxNulls {
		return nil, fmt.Errorf("prob: %d nulls exceed MaxNulls=%d", len(ids), MaxNulls)
	}
	rel := relevantConsts(db, q, tuple)
	fresh := freshConsts(len(ids), rel)

	// numTop[m] / denTop[m]: number of patterns with m fresh classes
	// satisfying Σ∧Q, resp. Σ.
	numTop := make([]int64, len(ids)+1)
	denTop := make([]int64, len(ids)+1)

	// Enumerate patterns: each null gets either a relevant constant or a
	// fresh class in restricted-growth order (class b may be used at
	// position i only if classes 0..b-1 appear before).
	v := value.NewValuation()
	var rec func(i, classes int)
	rec = func(i, classes int) {
		if i == len(ids) {
			world := db.Apply(v)
			if sigma != nil && !sigma.Holds(world) {
				return
			}
			denTop[classes]++
			if algebra.Eval(world, q, algebra.ModeNaive).Contains(v.Apply(tuple)) {
				numTop[classes]++
			}
			return
		}
		for j := range rel {
			v.Set(ids[i], rel[j])
			rec(i+1, classes)
		}
		for b := 0; b <= classes && b < len(fresh); b++ {
			v.Set(ids[i], fresh[b])
			next := classes
			if b == classes {
				next = classes + 1
			}
			rec(i+1, next)
		}
	}
	rec(0, 0)

	// Leading degree of the denominator polynomial.
	top := -1
	for m := len(ids); m >= 0; m-- {
		if denTop[m] > 0 {
			top = m
			break
		}
	}
	if top < 0 {
		return big.NewRat(0, 1), nil // Σ unsatisfiable over every k
	}
	return big.NewRat(numTop[top], denTop[top]), nil
}

// AlmostCertainlyTrue reports whether µ(Q, D, ā) = 1. By Theorem 4.10 this
// holds iff ā ∈ Qnaïve(D); the implementation goes through the pattern
// computation, and the equivalence with naive evaluation is verified by
// the test suite.
func AlmostCertainlyTrue(db *relation.Database, q algebra.Expr, tuple value.Tuple) (bool, error) {
	mu, err := Mu(db, q, nil, tuple)
	if err != nil {
		return false, err
	}
	return mu.Cmp(big.NewRat(1, 1)) == 0, nil
}

// SuppCount returns |Suppᵏ(Σ∧Q)| and |Suppᵏ(Σ)| for diagnostics: the raw
// counts behind µᵏ.
func SuppCount(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple, k int) (sat, total int, err error) {
	mu, err := MuK(db, q, sigma, tuple, k)
	if err != nil {
		return 0, 0, err
	}
	ids := db.NullIDs()
	worlds := 1
	for range ids {
		worlds *= k
	}
	if sigma == nil {
		total = worlds
	} else {
		// Recount Σ-worlds (MuK normalizes, so recompute the denominator).
		rel := relevantConsts(db, q, tuple)
		rng := append(append([]value.Value{}, rel...), freshConsts(k-len(rel), rel)...)
		v := value.NewValuation()
		var rec func(i int)
		rec = func(i int) {
			if i == len(ids) {
				if sigma.Holds(db.Apply(v)) {
					total++
				}
				return
			}
			for _, c := range rng {
				v.Set(ids[i], c)
				rec(i + 1)
			}
		}
		rec(0)
	}
	n := new(big.Rat).Mul(mu, big.NewRat(int64(total), 1))
	if !n.IsInt() {
		return 0, 0, fmt.Errorf("prob: internal inconsistency computing support counts")
	}
	return int(n.Num().Int64()), total, nil
}
