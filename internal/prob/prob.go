// Package prob implements the probabilistic framework of Section 4.3 of
// the paper: the probability µ(Q, D, ā) that a randomly chosen valuation
// witnesses ā as an answer, its finite restrictions µᵏ over valuations
// into {c₁,…,c_k}, and the conditional probability µ(Q|Σ, D, ā) under
// integrity constraints Σ.
//
// All probabilities are exact rationals (math/big). The asymptotic values
// are computed symbolically by enumerating *patterns*: a pattern assigns
// each null either a relevant constant (one occurring in D, Q or Σ) or an
// anonymous fresh class; all valuations realizing the same pattern agree
// on the events of interest (genericity), and a pattern with m fresh
// classes is realized by (k−|R|)(k−|R|−1)⋯(k−|R|−m+1) valuations into
// {c₁,…,c_k}. Both µᵏ numerator and denominator are therefore polynomials
// in k, and the limit is the ratio of their leading coefficients —
// Theorem 4.10's 0–1 law and Theorem 4.11's rational convergence both fall
// out of this computation.
package prob

import (
	"context"
	"fmt"
	"math/big"
	"strconv"

	"incdb/internal/algebra"
	"incdb/internal/constraint"
	"incdb/internal/engine"
	"incdb/internal/plan"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// MaxNulls bounds the pattern/valuation enumerations; both are exponential
// in the number of nulls (computing µ exactly is FP^#P-hard, Section 4.3).
const MaxNulls = 8

// Options configures the probabilistic procedures beyond their engine
// pool: Prep, when non-nil, supplies version-guarded prepared plans that
// survive across invocations (REPL/server workloads), exactly like
// certain.Options.Prep. Results never depend on either field.
type Options struct {
	Engine engine.Options
	Prep   *plan.PrepCache
	// Trace, when non-nil, accumulates execution statistics across the
	// whole enumeration (Execs = worlds evaluated, FrozenReuse =
	// frozen-subplan serves), exactly like certain.Options.Trace. Shared by
	// all worker shards; results are identical with or without it.
	Trace *plan.Trace
}

// worldEval returns the shared per-world evaluator; as in internal/certain,
// the plan's batch buffers recycle per worker shard via its sync.Pool, so
// the µᵏ counting loop pays for rows, not per-world allocations.
func (o Options) worldEval(db *relation.Database, q algebra.Expr) func(*relation.Database) *relation.Relation {
	prep := o.Prep.Get(db, q, algebra.ModeNaive, false)
	if o.Trace == nil {
		return prep.Exec
	}
	tr := o.Trace
	return func(w *relation.Database) *relation.Relation {
		return prep.ExecTraced(w, tr)
	}
}

// relevantConsts collects R = Const(D) ∪ consts(Q) ∪ consts(ā).
func relevantConsts(db *relation.Database, q algebra.Expr, tuple value.Tuple) []value.Value {
	seen := map[value.Value]bool{}
	var out []value.Value
	add := func(v value.Value) {
		if v.IsConst() && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, c := range db.Consts() {
		add(c)
	}
	for _, c := range algebra.ConstsOf(q) {
		add(c)
	}
	for _, v := range tuple {
		add(v)
	}
	return out
}

// freshConsts returns m constants outside the avoid set.
func freshConsts(m int, avoid []value.Value) []value.Value {
	have := map[value.Value]bool{}
	for _, v := range avoid {
		have[v] = true
	}
	var out []value.Value
	for i := 0; len(out) < m; i++ {
		c := value.Const("✶" + strconv.Itoa(i))
		if !have[c] {
			out = append(out, c)
		}
	}
	return out
}

// MuK computes µᵏ(Q|Σ, D, ā): the fraction of valuations v with range in
// {c₁,…,c_k} that satisfy v(D) ⊨ Σ and v(ā) ∈ Q(v(D)), among those
// satisfying Σ. A nil Σ is the unconditional µᵏ of (the display before)
// Theorem 4.10. The first k constants are taken as the relevant constants
// R followed by fresh ones; k must be at least |R| for the value to be
// enumeration-independent, and the enumeration costs kⁿ worlds.
func MuK(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple, k int) (*big.Rat, error) {
	return MuKWith(db, q, sigma, tuple, k, engine.Options{})
}

// MuKWith is MuK with an explicit worker pool: the kⁿ valuations are
// sharded across eng's workers and the per-shard counters summed, so the
// result is independent of the worker count.
func MuKWith(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple, k int, eng engine.Options) (*big.Rat, error) {
	return MuKOpts(db, q, sigma, tuple, k, Options{Engine: eng})
}

// MuKOpts is MuKWith with full Options (worker pool and prepared-plan
// reuse across calls).
func MuKOpts(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple, k int, opts Options) (*big.Rat, error) {
	num, den, err := suppCounts(db, q, sigma, tuple, k, opts)
	if err != nil {
		return nil, err
	}
	if den == 0 {
		return big.NewRat(0, 1), nil
	}
	return big.NewRat(num, den), nil
}

// suppCounts enumerates the kⁿ valuations once and returns
// (|Suppᵏ(Σ∧Q)|, |Suppᵏ(Σ)|); with nil Σ the denominator counts every
// valuation.
func suppCounts(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple, k int, opts Options) (int64, int64, error) {
	eng := opts.Engine
	ids := db.NullIDs()
	if len(ids) > MaxNulls {
		return 0, 0, fmt.Errorf("prob: %d nulls exceed MaxNulls=%d", len(ids), MaxNulls)
	}
	rel := relevantConsts(db, q, tuple)
	if k < len(rel) {
		return 0, 0, fmt.Errorf("prob: k=%d below |R|=%d; µᵏ would depend on the enumeration", k, len(rel))
	}
	rng := append(append([]value.Value{}, rel...), freshConsts(k-len(rel), rel)...)
	total := value.EnumSize(ids, rng)
	if total < 0 {
		return 0, 0, fmt.Errorf("prob: %d^%d valuations overflow the enumeration", len(rng), len(ids))
	}
	// Compile and prepare the query once for the whole kⁿ enumeration; the
	// prepared plan is shared by all worker shards (and, with opts.Prep,
	// reused across calls under its version guard).
	eval := opts.worldEval(db, q)
	countRange := func(lo, hi int) (num, den int64) {
		// One instantiation buffer per worker shard; ā is tiny but the
		// enumeration visits kⁿ worlds, so per-world allocations add up.
		buf := make(value.Tuple, len(tuple))
		value.EnumValuations(ids, rng, lo, hi, func(v value.Valuation) bool {
			world := db.ApplyShared(v)
			if sigma != nil && !sigma.Holds(world) {
				return true
			}
			den++
			if eval(world).Contains(v.ApplyInto(buf, tuple)) {
				num++
			}
			return true
		})
		return
	}
	w := eng.WorkerCount()
	if w <= 1 || total < engine.MinParallel {
		num, den := countRange(0, total)
		return num, den, nil
	}
	type counts struct{ num, den int64 }
	shards := engine.Split(total, w*4)
	parts, err := engine.Map(context.Background(), eng, len(shards),
		func(_ context.Context, si int) (counts, error) {
			num, den := countRange(shards[si][0], shards[si][1])
			return counts{num, den}, nil
		})
	if err != nil {
		return 0, 0, err
	}
	var num, den int64
	for _, p := range parts {
		num += p.num
		den += p.den
	}
	return num, den, nil
}

// Mu computes the asymptotic µ(Q|Σ, D, ā) = lim_k µᵏ exactly, by pattern
// enumeration. With nil Σ the result is 0 or 1 (Theorem 4.10); with
// constraints it is an arbitrary rational in [0,1] (Theorem 4.11). The
// convention µ = 0 applies when no valuation satisfies Σ.
func Mu(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple) (*big.Rat, error) {
	return MuWith(db, q, sigma, tuple, engine.Options{})
}

// patternEnum carries the fixed inputs of the Mu pattern enumeration so
// that independent subtrees can be counted by separate workers.
type patternEnum struct {
	db    *relation.Database
	q     algebra.Expr
	sigma constraint.Set
	tuple value.Tuple
	ids   []uint64
	rel   []value.Value
	fresh []value.Value
	// eval is the per-world evaluator: one prepared plan shared by every
	// branch worker, frozen over the base database's null-free relations.
	eval func(*relation.Database) *relation.Relation
}

// count enumerates the patterns extending v from position i with the given
// number of fresh classes already open, accumulating into numTop/denTop.
// Each null gets either a relevant constant or a fresh class in
// restricted-growth order (class b may be used at position i only if
// classes 0..b-1 appear before).
// buf is a per-worker instantiation buffer for e.tuple (len(e.tuple)); the
// enumeration is exponential in the nulls, so leaf checks must not allocate.
func (e *patternEnum) count(v value.Valuation, buf value.Tuple, i, classes int, numTop, denTop []int64) {
	if i == len(e.ids) {
		world := e.db.ApplyShared(v)
		if e.sigma != nil && !e.sigma.Holds(world) {
			return
		}
		denTop[classes]++
		if e.eval(world).Contains(v.ApplyInto(buf, e.tuple)) {
			numTop[classes]++
		}
		return
	}
	for j := range e.rel {
		v.Set(e.ids[i], e.rel[j])
		e.count(v, buf, i+1, classes, numTop, denTop)
	}
	for b := 0; b <= classes && b < len(e.fresh); b++ {
		v.Set(e.ids[i], e.fresh[b])
		next := classes
		if b == classes {
			next = classes + 1
		}
		e.count(v, buf, i+1, next, numTop, denTop)
	}
}

// MuWith is Mu with an explicit worker pool. The pattern tree is sharded on
// the first null's choice (each relevant constant, or the first fresh
// class); the per-branch polynomial coefficients are summed, so the result
// is independent of the worker count.
func MuWith(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple, eng engine.Options) (*big.Rat, error) {
	return MuOpts(db, q, sigma, tuple, Options{Engine: eng})
}

// MuOpts is MuWith with full Options (worker pool and prepared-plan reuse
// across calls).
func MuOpts(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple, opts Options) (*big.Rat, error) {
	eng := opts.Engine
	ids := db.NullIDs()
	if len(ids) > MaxNulls {
		return nil, fmt.Errorf("prob: %d nulls exceed MaxNulls=%d", len(ids), MaxNulls)
	}
	rel := relevantConsts(db, q, tuple)
	fresh := freshConsts(len(ids), rel)
	e := &patternEnum{db: db, q: q, sigma: sigma, tuple: tuple, ids: ids, rel: rel, fresh: fresh,
		eval: opts.worldEval(db, q)}

	// numTop[m] / denTop[m]: number of patterns with m fresh classes
	// satisfying Σ∧Q, resp. Σ.
	numTop := make([]int64, len(ids)+1)
	denTop := make([]int64, len(ids)+1)

	branches := len(rel) + 1 // first null's choices: each c ∈ R, or fresh class 0
	// Pattern count is bounded by the valuations into R ∪ fresh; below the
	// engine threshold the serial walk wins, like every other oracle here.
	bound := value.EnumSize(ids, append(append([]value.Value{}, rel...), fresh...))
	small := bound >= 0 && bound < engine.MinParallel
	if len(ids) == 0 || eng.WorkerCount() == 1 || branches == 1 || small {
		e.count(value.NewValuation(), make(value.Tuple, len(tuple)), 0, 0, numTop, denTop)
	} else {
		type coeffs struct{ num, den []int64 }
		parts, err := engine.Map(context.Background(), eng, branches,
			func(_ context.Context, bi int) (coeffs, error) {
				v := value.NewValuation()
				buf := make(value.Tuple, len(tuple))
				num := make([]int64, len(ids)+1)
				den := make([]int64, len(ids)+1)
				if bi < len(rel) {
					v.Set(ids[0], rel[bi])
					e.count(v, buf, 1, 0, num, den)
				} else {
					v.Set(ids[0], fresh[0])
					e.count(v, buf, 1, 1, num, den)
				}
				return coeffs{num, den}, nil
			})
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			for m := range numTop {
				numTop[m] += p.num[m]
				denTop[m] += p.den[m]
			}
		}
	}

	// Leading degree of the denominator polynomial.
	top := -1
	for m := len(ids); m >= 0; m-- {
		if denTop[m] > 0 {
			top = m
			break
		}
	}
	if top < 0 {
		return big.NewRat(0, 1), nil // Σ unsatisfiable over every k
	}
	return big.NewRat(numTop[top], denTop[top]), nil
}

// AlmostCertainlyTrue reports whether µ(Q, D, ā) = 1. By Theorem 4.10 this
// holds iff ā ∈ Qnaïve(D); the implementation goes through the pattern
// computation, and the equivalence with naive evaluation is verified by
// the test suite.
func AlmostCertainlyTrue(db *relation.Database, q algebra.Expr, tuple value.Tuple) (bool, error) {
	mu, err := Mu(db, q, nil, tuple)
	if err != nil {
		return false, err
	}
	return mu.Cmp(big.NewRat(1, 1)) == 0, nil
}

// SuppCount returns |Suppᵏ(Σ∧Q)| and |Suppᵏ(Σ)| for diagnostics: the raw
// counts behind µᵏ (with nil Σ the second count is all kⁿ valuations).
func SuppCount(db *relation.Database, q algebra.Expr, sigma constraint.Set, tuple value.Tuple, k int) (sat, total int, err error) {
	num, den, err := suppCounts(db, q, sigma, tuple, k, Options{})
	if err != nil {
		return 0, 0, err
	}
	return int(num), int(den), nil
}
