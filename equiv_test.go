// Equivalence tests for the hash-native data layer: the PR-1 storage keyed
// rows by the injective string Tuple.Key(); this PR keys them by cached
// 64-bit hashes with Tuple.Equal collision checks. These tests keep the
// string-keyed semantics alive as a reference implementation and assert
// that the engine's results are identical to it on randomized instances.
package incdb

import (
	"math/rand"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/gen"
	"incdb/internal/plan"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// refBag is the string-keyed reference representation: a bag of tuples
// keyed by the injective Key() encoding, exactly how Relation stored rows
// before the hash-native layer.
type refBag struct {
	counts map[string]int
	tuples map[string]value.Tuple
}

func newRefBag() *refBag {
	return &refBag{counts: map[string]int{}, tuples: map[string]value.Tuple{}}
}

func (b *refBag) add(t value.Tuple, m int) {
	k := t.Key()
	b.counts[k] += m
	if b.counts[k] <= 0 {
		delete(b.counts, k)
		delete(b.tuples, k)
		return
	}
	b.tuples[k] = t
}

func refOf(r *relation.Relation) *refBag {
	b := newRefBag()
	r.Each(func(t value.Tuple, m int) { b.add(t, m) })
	return b
}

// mustMatch asserts that the relation holds exactly the reference bag, and
// that its own lookups (Contains/Mult), counters (Len/Size) and sorted
// iteration agree with the string-keyed view.
func mustMatch(t *testing.T, label string, r *relation.Relation, want *refBag) {
	t.Helper()
	if r.Len() != len(want.counts) {
		t.Fatalf("%s: Len=%d, reference has %d distinct tuples", label, r.Len(), len(want.counts))
	}
	size := 0
	for _, m := range want.counts {
		size += m
	}
	if r.Size() != size {
		t.Fatalf("%s: Size=%d, reference %d", label, r.Size(), size)
	}
	for k, m := range want.counts {
		tu := want.tuples[k]
		if !r.Contains(tu) {
			t.Fatalf("%s: missing %v", label, tu)
		}
		if got := r.Mult(tu); got != m {
			t.Fatalf("%s: Mult(%v)=%d, reference %d", label, tu, got, m)
		}
	}
	prev := value.Tuple(nil)
	seen := map[string]bool{}
	r.Each(func(tu value.Tuple, m int) {
		k := tu.Key()
		if seen[k] {
			t.Fatalf("%s: duplicate tuple %v in iteration", label, tu)
		}
		seen[k] = true
		if want.counts[k] != m {
			t.Fatalf("%s: iterated %v ×%d, reference ×%d", label, tu, m, want.counts[k])
		}
		if prev != nil && prev.Compare(tu) >= 0 {
			t.Fatalf("%s: iteration not strictly sorted: %v before %v", label, prev, tu)
		}
		prev = tu
	})
	if len(seen) != len(want.counts) {
		t.Fatalf("%s: iteration visited %d tuples, reference %d", label, len(seen), len(want.counts))
	}
}

// randomRelation builds a relation over a pool of constants and marked
// nulls, with duplicate inserts and multiplicity arithmetic exercised.
func randomRelation(r *rand.Rand, name string, arity, rows int) *relation.Relation {
	rel := relation.NewArity(name, arity)
	val := func() value.Value {
		if r.Intn(4) == 0 {
			return value.Null(uint64(r.Intn(3) + 1))
		}
		return value.Int(r.Intn(4))
	}
	for i := 0; i < rows; i++ {
		t := make(value.Tuple, arity)
		for j := range t {
			t[j] = val()
		}
		rel.AddMult(t, r.Intn(3)+1)
	}
	return rel
}

// TestRelationMatchesStringKeyedReference drives random mutation sequences
// through both representations and asserts they never diverge.
func TestRelationMatchesStringKeyedReference(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 50; trial++ {
		rel := relation.NewArity("T", 2)
		want := newRefBag()
		for op := 0; op < 60; op++ {
			tu := value.T(value.Int(r.Intn(5)), value.Null(uint64(r.Intn(3)+1)))
			if r.Intn(2) == 0 {
				tu[1] = value.Int(r.Intn(5))
			}
			switch r.Intn(3) {
			case 0:
				rel.Add(tu)
				want.add(tu, 1)
			case 1:
				m := r.Intn(5) - 2 // negative subtractions included
				rel.AddMult(tu, m)
				want.add(tu, m)
			default:
				m := r.Intn(4)
				rel.SetMult(tu, m)
				k := tu.Key()
				delete(want.counts, k)
				delete(want.tuples, k)
				if m > 0 {
					want.counts[k] = m
					want.tuples[k] = tu
				}
			}
		}
		mustMatch(t, "mutation sequence", rel, want)
	}
}

// TestOperatorsMatchStringKeyedReference evaluates the dedup-sensitive
// operators (union, difference, intersection, projection) through the
// engine and through string-keyed reference folds, under both bag and set
// semantics, and asserts identical results.
func TestOperatorsMatchStringKeyedReference(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		db := relation.NewDatabase()
		db.Add(randomRelation(r, "L", 2, 8))
		db.Add(randomRelation(r, "R", 2, 8))
		l, rr := db.MustRelation("L"), db.MustRelation("R")

		for _, bag := range []bool{false, true} {
			eval := func(q algebra.Expr) *relation.Relation {
				if bag {
					return algebra.EvalBag(db, q, algebra.ModeNaive)
				}
				return algebra.Eval(db, q, algebra.ModeNaive)
			}
			multOf := func(rel *relation.Relation, tu value.Tuple) int {
				if !bag {
					if rel.Contains(tu) {
						return 1
					}
					return 0
				}
				return rel.Mult(tu)
			}

			union := newRefBag()
			l.Each(func(tu value.Tuple, m int) { union.add(tu, multOf(l, tu)) })
			rr.Each(func(tu value.Tuple, m int) { union.add(tu, multOf(rr, tu)) })
			if !bag { // set semantics normalizes after merging
				for k := range union.counts {
					union.counts[k] = 1
				}
			}
			mustMatch(t, "union", eval(algebra.Un(algebra.R("L"), algebra.R("R"))), union)

			diff := newRefBag()
			l.Each(func(tu value.Tuple, m int) {
				if bag {
					if rest := m - rr.Mult(tu); rest > 0 {
						diff.add(tu, rest)
					}
				} else if !rr.Contains(tu) {
					diff.add(tu, 1)
				}
			})
			mustMatch(t, "diff", eval(algebra.Minus(algebra.R("L"), algebra.R("R"))), diff)

			inter := newRefBag()
			l.Each(func(tu value.Tuple, m int) {
				rm := rr.Mult(tu)
				if rm == 0 {
					return
				}
				if !bag {
					inter.add(tu, 1)
					return
				}
				if rm < m {
					m = rm
				}
				inter.add(tu, m)
			})
			mustMatch(t, "intersect", eval(algebra.Inter(algebra.R("L"), algebra.R("R"))), inter)

			proj := newRefBag()
			l.Each(func(tu value.Tuple, m int) {
				pm := multOf(l, tu)
				proj.add(tu.Project([]int{0}), pm)
			})
			if !bag {
				for k := range proj.counts {
					proj.counts[k] = 1
				}
			}
			mustMatch(t, "project", eval(algebra.Proj(algebra.R("L"), 0)), proj)
		}
	}
}

// mustEvalEqual asserts that the planned evaluation of q is byte-identical
// to the reference interpreter: same tuple multiset, same multiplicities,
// and the same deterministic rendering (modulo the relation name, which is
// unified before comparing).
func mustEvalEqual(t *testing.T, db *relation.Database, q algebra.Expr, label string) {
	t.Helper()
	for _, mode := range []algebra.Mode{algebra.ModeNaive, algebra.ModeSQL} {
		for _, bag := range []bool{false, true} {
			var want, got *relation.Relation
			if bag {
				want = algebra.EvalBagInterp(db, q, mode)
				got = plan.EvalBag(db, q, mode)
			} else {
				want = algebra.EvalInterp(db, q, mode)
				got = plan.Eval(db, q, mode)
			}
			if !want.Equal(got) {
				t.Fatalf("%s (%v, bag=%t): planned result diverges\nQ = %s\nD = %v\ninterp = %v\nplanned = %v",
					label, mode, bag, q, db, want, got)
			}
			ws, gs := want.Rename("q").String(), got.Rename("q").String()
			if ws != gs {
				t.Fatalf("%s (%v, bag=%t): renderings diverge\nQ = %s\ninterp:\n%s\nplanned:\n%s",
					label, mode, bag, q, ws, gs)
			}
		}
	}
}

// TestPlannerMatchesInterpreterRandom is the randomized planner-equivalence
// corpus: full relational algebra with difference, plus IN-subquery atoms,
// over random incomplete databases — planned evaluation must be
// byte-identical to the reference interpreter in both modes and under both
// semantics.
func TestPlannerMatchesInterpreterRandom(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	cfg := gen.DefaultConfig()
	cfg.MaxTuples = 6
	qcfg := gen.DefaultQueryConfig()
	qcfg.InSubRate = 0.25
	for trial := 0; trial < 300; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1+r.Intn(2))
		mustEvalEqual(t, db, q, "random corpus")
	}
	// The Pos∀G fragment adds division.
	qcfg = gen.DefaultQueryConfig()
	qcfg.Fragment = gen.FragmentPosForallG
	for trial := 0; trial < 100; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1+r.Intn(2))
		mustEvalEqual(t, db, q, "pos-forall-g corpus")
	}
}

// TestPlannerMatchesInterpreterJoins pins down the join shapes the planner
// normalizes specially: multi-equality conjuncts, products nested beyond
// one level, selections interleaved with projections, anti-unification and
// the active-domain query.
func TestPlannerMatchesInterpreterJoins(t *testing.T) {
	r := rand.New(rand.NewSource(909))
	cfg := gen.Config{MaxTuples: 5, NullRate: 0.3, NullPool: 3, ConstPool: 3}
	queries := []struct {
		name string
		q    algebra.Expr
	}{
		{"two-key join", algebra.Sel(
			algebra.Times(algebra.R("R"), algebra.R("T")),
			algebra.CAnd(algebra.CEq(0, 2), algebra.CEq(1, 3)))},
		{"three-way chain", algebra.Sel(
			algebra.Times(algebra.Times(algebra.R("R"), algebra.R("T")), algebra.R("S")),
			algebra.CAnd(algebra.CEq(1, 2), algebra.CEq(3, 4)))},
		{"nested select over product", algebra.Sel(
			algebra.Times(
				algebra.Sel(algebra.R("R"), algebra.CEqC(1, gen.ConstOf(0))),
				algebra.R("T")),
			algebra.CEq(0, 2))},
		{"join through projection", algebra.Proj(algebra.Sel(
			algebra.Times(algebra.Proj(algebra.R("R"), 1, 0), algebra.R("T")),
			algebra.CEq(0, 2)), 1, 3)},
		{"residual inequality", algebra.Sel(
			algebra.Times(algebra.R("R"), algebra.R("T")),
			algebra.CAnd(algebra.CEq(0, 2), algebra.CNeq(1, 3)))},
		{"disjunctive spanning condition", algebra.Sel(
			algebra.Times(algebra.R("R"), algebra.R("T")),
			algebra.COr(algebra.CEq(0, 2), algebra.CEq(1, 3)))},
		{"cross product no keys", algebra.Times(algebra.R("S"), algebra.R("S"))},
		{"anti-unify under filter", algebra.Sel(
			algebra.AntiJoin(algebra.R("R"), algebra.R("T")),
			algebra.CConst(0))},
		{"difference of joins", algebra.Minus(
			algebra.Proj(algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("T")), algebra.CEq(1, 2)), 0),
			algebra.R("S"))},
		{"division", algebra.Div(algebra.R("R"), algebra.R("S"))},
		{"dom power", algebra.Sel(algebra.DomK(2), algebra.CEq(0, 1))},
		{"in over join", algebra.Sel(algebra.R("R"),
			algebra.CIn(algebra.Proj(algebra.Sel(
				algebra.Times(algebra.R("T"), algebra.R("S")), algebra.CEq(1, 2)), 0), 0))},
		{"selection with null tests", algebra.Sel(
			algebra.Times(algebra.R("R"), algebra.R("T")),
			algebra.CAnd(algebra.CEq(0, 2), algebra.CAnd(algebra.CConst(1), algebra.CNull(3))))},
	}
	for trial := 0; trial < 40; trial++ {
		db := gen.DB(r, cfg)
		for _, tc := range queries {
			mustEvalEqual(t, db, tc.q, tc.name)
		}
	}
}

// TestPreparedMatchesPerWorldEval locks in the oracle contract: executing a
// prepared plan on worlds v(D) must match interpreting the query on each
// world from scratch, for every valuation of a small space — under both
// modes (the oracles use naive; ModeSQL exercises the frozen null-split
// paths of the exported API) and both semantics.
func TestPreparedMatchesPerWorldEval(t *testing.T) {
	r := rand.New(rand.NewSource(555))
	cfg := gen.DefaultConfig()
	qcfg := gen.DefaultQueryConfig()
	qcfg.InSubRate = 0.2
	for trial := 0; trial < 30; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1)
		space, err := certain.NewSpace(db, algebra.ConstsOf(q), certain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []algebra.Mode{algebra.ModeNaive, algebra.ModeSQL} {
			for _, bag := range []bool{false, true} {
				var p *plan.Plan
				if bag {
					p = plan.CompileBag(q, db, mode)
				} else {
					p = plan.Compile(q, db, mode)
				}
				prep := p.Prepare(db)
				worlds := 0
				space.Each(func(v value.Valuation) bool {
					world := db.Apply(v)
					var want *relation.Relation
					if bag {
						want = algebra.EvalBagInterp(world, q, mode)
					} else {
						want = algebra.EvalInterp(world, q, mode)
					}
					got := prep.Exec(world)
					if !want.Equal(got) {
						t.Fatalf("trial %d %v bag=%t: prepared exec diverges on world %v\nQ = %s\ninterp = %v\nprepared = %v",
							trial, mode, bag, v, q, want, got)
					}
					worlds++
					return worlds < 32 // bounded: the space can be large
				})
			}
		}
	}
}

// skewedJoinDB builds n arity-2 relations J0..J(n-1) with deliberately
// skewed cardinalities: most inputs are tiny, one or two are 10–40× larger.
// The shared constant pool makes key equalities selective but non-empty, so
// the cost-based order differs materially from the syntactic one.
func skewedJoinDB(r *rand.Rand, n int) *relation.Database {
	db := relation.NewDatabase()
	big := r.Intn(n)
	for i := 0; i < n; i++ {
		cfg := gen.Config{MaxTuples: 1 + r.Intn(3), NullRate: 0.15, NullPool: 2, ConstPool: 6}
		if i == big || r.Intn(n) == 0 {
			cfg.MaxTuples = 10 + r.Intn(30)
		}
		db.Add(gen.Relation(r, "J"+string(rune('0'+i)), 2, cfg))
	}
	return db
}

// chainQuery joins J0..J(n-1) in a chain — each input's second column
// equals the next input's first — as interleaved σ/× levels, how translated
// queries arrive. The planner flattens the whole nest into one join cluster
// and reorders it; the reference interpreter peels one hash join per level.
func chainQuery(n int) algebra.Expr {
	e := algebra.Expr(algebra.R("J0"))
	for i := 1; i < n; i++ {
		e = algebra.Sel(
			algebra.Times(e, algebra.R("J"+string(rune('0'+i)))),
			algebra.CEq(2*i-1, 2*i))
	}
	return e
}

// starQuery joins the k-ary center C against dimensions J1..Jk, center
// column i-1 matching dimension i's key column. Dimensions append on the
// right, so each link's column indices are stable as the star grows.
func starQuery(k int) algebra.Expr {
	e := algebra.Expr(algebra.R("C"))
	for i := 1; i <= k; i++ {
		e = algebra.Sel(
			algebra.Times(e, algebra.R("J"+string(rune('0'+i)))),
			algebra.CEq(i-1, k+2*(i-1)))
	}
	return e
}

// TestPlannerMatchesInterpreterChainJoins extends the equivalence corpus
// with randomized 4–8-relation chain joins over skewed inputs: the
// cost-based, column-pruned, batched plans must stay byte-identical to the
// interpreter in every mode and semantics.
func TestPlannerMatchesInterpreterChainJoins(t *testing.T) {
	r := rand.New(rand.NewSource(8801))
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(5)
		db := skewedJoinDB(r, n)
		q := chainQuery(n)
		if r.Intn(2) == 0 {
			// Half the trials project a few columns so pruning masks are
			// narrow rather than full-width.
			q = algebra.Proj(q, 0, 2*n-1)
		}
		mustEvalEqual(t, db, q, "chain join")
	}
}

// TestPlannerMatchesInterpreterStarJoins does the same for star shapes: a
// k-ary center joined to k dimension tables of wildly different sizes.
func TestPlannerMatchesInterpreterStarJoins(t *testing.T) {
	r := rand.New(rand.NewSource(8802))
	for trial := 0; trial < 25; trial++ {
		k := 3 + r.Intn(5) // 4–8 relations including the center
		db := relation.NewDatabase()
		ccfg := gen.Config{MaxTuples: 8 + r.Intn(20), NullRate: 0.1, NullPool: 2, ConstPool: 6}
		db.Add(gen.Relation(r, "C", k, ccfg))
		for i := 1; i <= k; i++ {
			dcfg := gen.Config{MaxTuples: 1 + r.Intn(4), NullRate: 0.15, NullPool: 2, ConstPool: 6}
			if r.Intn(3) == 0 {
				dcfg.MaxTuples = 12 + r.Intn(24)
			}
			db.Add(gen.Relation(r, "J"+string(rune('0'+i)), 2, dcfg))
		}
		q := starQuery(k)
		if r.Intn(2) == 0 {
			q = algebra.Proj(q, r.Intn(k), k+1)
		}
		mustEvalEqual(t, db, q, "star join")
	}
}

// TestPreparedChainJoinsPerWorld closes the loop on the oracle contract for
// the new shapes: prepared chain-join plans executed per world must match
// interpreting each world from scratch.
func TestPreparedChainJoinsPerWorld(t *testing.T) {
	r := rand.New(rand.NewSource(8803))
	for trial := 0; trial < 6; trial++ {
		n := 4 + r.Intn(3)
		db := skewedJoinDB(r, n)
		q := chainQuery(n)
		space, err := certain.NewSpace(db, algebra.ConstsOf(q), certain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []algebra.Mode{algebra.ModeNaive, algebra.ModeSQL} {
			for _, bag := range []bool{false, true} {
				var p *plan.Plan
				if bag {
					p = plan.CompileBag(q, db, mode)
				} else {
					p = plan.Compile(q, db, mode)
				}
				prep := p.Prepare(db)
				worlds := 0
				space.Each(func(v value.Valuation) bool {
					world := db.Apply(v)
					var want *relation.Relation
					if bag {
						want = algebra.EvalBagInterp(world, q, mode)
					} else {
						want = algebra.EvalInterp(world, q, mode)
					}
					if got := prep.Exec(world); !want.Equal(got) {
						t.Fatalf("trial %d %v bag=%t: prepared chain join diverges on world %v\nQ = %s\ninterp = %v\nprepared = %v",
							trial, mode, bag, v, q, want, got)
					}
					worlds++
					return worlds < 16
				})
			}
		}
	}
}

// TestPlannerStaleStatsStillExact is the adversarial case: plans compiled
// when the statistics said one thing keep executing against a database whose
// cardinalities have inverted — estimates maximally wrong, join order
// pessimal — and the answers must still be byte-identical to the
// interpreter. Correctness must never depend on the cost model.
func TestPlannerStaleStatsStillExact(t *testing.T) {
	r := rand.New(rand.NewSource(8804))
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(2)
		db := skewedJoinDB(r, n)
		q := chainQuery(n)
		for _, mode := range []algebra.Mode{algebra.ModeNaive, algebra.ModeSQL} {
			for _, bag := range []bool{false, true} {
				var p *plan.Plan
				if bag {
					p = plan.CompileBag(q, db, mode)
				} else {
					p = plan.Compile(q, db, mode)
				}
				// Invert the skew after compilation: formerly-tiny inputs
				// become the biggest, the big ones stay as they were. The
				// compiled plan's order and build/probe choices are now
				// maximally wrong for this data.
				for i := 0; i < n; i++ {
					rel := db.MustRelation("J" + string(rune('0'+i)))
					if rel.Len() <= 4 {
						for j := 0; j < 25; j++ {
							rel.Add(value.T(
								value.Const("c"+string(rune('0'+r.Intn(6)))),
								value.Const("c"+string(rune('0'+r.Intn(6)))),
							))
						}
					}
				}
				var want *relation.Relation
				if bag {
					want = algebra.EvalBagInterp(db, q, mode)
				} else {
					want = algebra.EvalInterp(db, q, mode)
				}
				if got := p.Exec(db); !want.Equal(got) {
					t.Fatalf("trial %d %v bag=%t: stale-stats plan diverges\nQ = %s\ninterp = %v\nplanned = %v",
						trial, mode, bag, q, want, got)
				}
			}
		}
	}
}

// TestRandomQueriesInternallyConsistent runs randomized gen queries end to
// end and asserts the result relations agree with their own string-keyed
// view — the whole-query version of the operator-level checks above.
func TestRandomQueriesInternallyConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	cfg := gen.DefaultConfig()
	qcfg := gen.DefaultQueryConfig()
	for trial := 0; trial < 25; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1+r.Intn(2))
		for _, mode := range []algebra.Mode{algebra.ModeNaive, algebra.ModeSQL} {
			res := algebra.Eval(db, q, mode)
			mustMatch(t, "set "+mode.String(), res, refOf(res))
			res = algebra.EvalBag(db, q, mode)
			mustMatch(t, "bag "+mode.String(), res, refOf(res))
		}
	}
}
