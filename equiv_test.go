// Equivalence tests for the hash-native data layer: the PR-1 storage keyed
// rows by the injective string Tuple.Key(); this PR keys them by cached
// 64-bit hashes with Tuple.Equal collision checks. These tests keep the
// string-keyed semantics alive as a reference implementation and assert
// that the engine's results are identical to it on randomized instances.
package incdb

import (
	"math/rand"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/gen"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// refBag is the string-keyed reference representation: a bag of tuples
// keyed by the injective Key() encoding, exactly how Relation stored rows
// before the hash-native layer.
type refBag struct {
	counts map[string]int
	tuples map[string]value.Tuple
}

func newRefBag() *refBag {
	return &refBag{counts: map[string]int{}, tuples: map[string]value.Tuple{}}
}

func (b *refBag) add(t value.Tuple, m int) {
	k := t.Key()
	b.counts[k] += m
	if b.counts[k] <= 0 {
		delete(b.counts, k)
		delete(b.tuples, k)
		return
	}
	b.tuples[k] = t
}

func refOf(r *relation.Relation) *refBag {
	b := newRefBag()
	r.Each(func(t value.Tuple, m int) { b.add(t, m) })
	return b
}

// mustMatch asserts that the relation holds exactly the reference bag, and
// that its own lookups (Contains/Mult), counters (Len/Size) and sorted
// iteration agree with the string-keyed view.
func mustMatch(t *testing.T, label string, r *relation.Relation, want *refBag) {
	t.Helper()
	if r.Len() != len(want.counts) {
		t.Fatalf("%s: Len=%d, reference has %d distinct tuples", label, r.Len(), len(want.counts))
	}
	size := 0
	for _, m := range want.counts {
		size += m
	}
	if r.Size() != size {
		t.Fatalf("%s: Size=%d, reference %d", label, r.Size(), size)
	}
	for k, m := range want.counts {
		tu := want.tuples[k]
		if !r.Contains(tu) {
			t.Fatalf("%s: missing %v", label, tu)
		}
		if got := r.Mult(tu); got != m {
			t.Fatalf("%s: Mult(%v)=%d, reference %d", label, tu, got, m)
		}
	}
	prev := value.Tuple(nil)
	seen := map[string]bool{}
	r.Each(func(tu value.Tuple, m int) {
		k := tu.Key()
		if seen[k] {
			t.Fatalf("%s: duplicate tuple %v in iteration", label, tu)
		}
		seen[k] = true
		if want.counts[k] != m {
			t.Fatalf("%s: iterated %v ×%d, reference ×%d", label, tu, m, want.counts[k])
		}
		if prev != nil && prev.Compare(tu) >= 0 {
			t.Fatalf("%s: iteration not strictly sorted: %v before %v", label, prev, tu)
		}
		prev = tu
	})
	if len(seen) != len(want.counts) {
		t.Fatalf("%s: iteration visited %d tuples, reference %d", label, len(seen), len(want.counts))
	}
}

// randomRelation builds a relation over a pool of constants and marked
// nulls, with duplicate inserts and multiplicity arithmetic exercised.
func randomRelation(r *rand.Rand, name string, arity, rows int) *relation.Relation {
	rel := relation.NewArity(name, arity)
	val := func() value.Value {
		if r.Intn(4) == 0 {
			return value.Null(uint64(r.Intn(3) + 1))
		}
		return value.Int(r.Intn(4))
	}
	for i := 0; i < rows; i++ {
		t := make(value.Tuple, arity)
		for j := range t {
			t[j] = val()
		}
		rel.AddMult(t, r.Intn(3)+1)
	}
	return rel
}

// TestRelationMatchesStringKeyedReference drives random mutation sequences
// through both representations and asserts they never diverge.
func TestRelationMatchesStringKeyedReference(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 50; trial++ {
		rel := relation.NewArity("T", 2)
		want := newRefBag()
		for op := 0; op < 60; op++ {
			tu := value.T(value.Int(r.Intn(5)), value.Null(uint64(r.Intn(3)+1)))
			if r.Intn(2) == 0 {
				tu[1] = value.Int(r.Intn(5))
			}
			switch r.Intn(3) {
			case 0:
				rel.Add(tu)
				want.add(tu, 1)
			case 1:
				m := r.Intn(5) - 2 // negative subtractions included
				rel.AddMult(tu, m)
				want.add(tu, m)
			default:
				m := r.Intn(4)
				rel.SetMult(tu, m)
				k := tu.Key()
				delete(want.counts, k)
				delete(want.tuples, k)
				if m > 0 {
					want.counts[k] = m
					want.tuples[k] = tu
				}
			}
		}
		mustMatch(t, "mutation sequence", rel, want)
	}
}

// TestOperatorsMatchStringKeyedReference evaluates the dedup-sensitive
// operators (union, difference, intersection, projection) through the
// engine and through string-keyed reference folds, under both bag and set
// semantics, and asserts identical results.
func TestOperatorsMatchStringKeyedReference(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		db := relation.NewDatabase()
		db.Add(randomRelation(r, "L", 2, 8))
		db.Add(randomRelation(r, "R", 2, 8))
		l, rr := db.MustRelation("L"), db.MustRelation("R")

		for _, bag := range []bool{false, true} {
			eval := func(q algebra.Expr) *relation.Relation {
				if bag {
					return algebra.EvalBag(db, q, algebra.ModeNaive)
				}
				return algebra.Eval(db, q, algebra.ModeNaive)
			}
			multOf := func(rel *relation.Relation, tu value.Tuple) int {
				if !bag {
					if rel.Contains(tu) {
						return 1
					}
					return 0
				}
				return rel.Mult(tu)
			}

			union := newRefBag()
			l.Each(func(tu value.Tuple, m int) { union.add(tu, multOf(l, tu)) })
			rr.Each(func(tu value.Tuple, m int) { union.add(tu, multOf(rr, tu)) })
			if !bag { // set semantics normalizes after merging
				for k := range union.counts {
					union.counts[k] = 1
				}
			}
			mustMatch(t, "union", eval(algebra.Un(algebra.R("L"), algebra.R("R"))), union)

			diff := newRefBag()
			l.Each(func(tu value.Tuple, m int) {
				if bag {
					if rest := m - rr.Mult(tu); rest > 0 {
						diff.add(tu, rest)
					}
				} else if !rr.Contains(tu) {
					diff.add(tu, 1)
				}
			})
			mustMatch(t, "diff", eval(algebra.Minus(algebra.R("L"), algebra.R("R"))), diff)

			inter := newRefBag()
			l.Each(func(tu value.Tuple, m int) {
				rm := rr.Mult(tu)
				if rm == 0 {
					return
				}
				if !bag {
					inter.add(tu, 1)
					return
				}
				if rm < m {
					m = rm
				}
				inter.add(tu, m)
			})
			mustMatch(t, "intersect", eval(algebra.Inter(algebra.R("L"), algebra.R("R"))), inter)

			proj := newRefBag()
			l.Each(func(tu value.Tuple, m int) {
				pm := multOf(l, tu)
				proj.add(tu.Project([]int{0}), pm)
			})
			if !bag {
				for k := range proj.counts {
					proj.counts[k] = 1
				}
			}
			mustMatch(t, "project", eval(algebra.Proj(algebra.R("L"), 0)), proj)
		}
	}
}

// TestRandomQueriesInternallyConsistent runs randomized gen queries end to
// end and asserts the result relations agree with their own string-keyed
// view — the whole-query version of the operator-level checks above.
func TestRandomQueriesInternallyConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	cfg := gen.DefaultConfig()
	qcfg := gen.DefaultQueryConfig()
	for trial := 0; trial < 25; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1+r.Intn(2))
		for _, mode := range []algebra.Mode{algebra.ModeNaive, algebra.ModeSQL} {
			res := algebra.Eval(db, q, mode)
			mustMatch(t, "set "+mode.String(), res, refOf(res))
			res = algebra.EvalBag(db, q, mode)
			mustMatch(t, "bag "+mode.String(), res, refOf(res))
		}
	}
}
