module incdb

go 1.22
