// Package incdb is a library for querying incomplete relational databases
// with correctness guarantees, reproducing the framework surveyed in
// Console, Guagliardo, Libkin and Toussaint, "Coping with Incomplete Data:
// Recent Advances" (PODS 2020).
//
// The library provides:
//
//   - a relational engine over constants and marked nulls, with set and
//     bag semantics, naive evaluation and SQL-style three-valued
//     evaluation (internal/algebra, internal/relation, internal/value);
//   - exact certain answers — cert⊥ and cert∩ — as a guarded exponential
//     oracle (internal/certain);
//   - the two polynomial approximation schemes of Figure 2, (Qᵗ, Qᶠ) and
//     (Q⁺, Q?) (internal/translate), and the four c-table evaluation
//     strategies of Greco et al. (internal/ctable);
//   - the probabilistic framework of Section 4.3: µᵏ, asymptotic µ, the
//     0–1 law, and conditional probabilities under FDs and INDs as exact
//     rationals (internal/prob, internal/constraint);
//   - the many-valued logics of Section 5: Kleene's L3v, the derived
//     six-valued L6v, the assertion operator, the FO semantics ⟦·⟧bool,
//     ⟦·⟧unif, ⟦·⟧nullfree, ⟦·⟧sql, and the Boolean-FO compilation of
//     Theorems 5.4/5.5 (internal/logic, internal/fo).
//
// This package is the public facade: it re-exports the types and
// operations that examples and downstream users need, so that a typical
// program imports only "incdb".
package incdb

import (
	"math/big"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/constraint"
	"incdb/internal/core"
	"incdb/internal/ctable"
	"incdb/internal/engine"
	"incdb/internal/plan"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// Data model.
type (
	// Database is an incomplete relational instance over Const ∪ Null.
	Database = relation.Database
	// Relation is a multiset of tuples of fixed arity.
	Relation = relation.Relation
	// Tuple is a row.
	Tuple = value.Tuple
	// Value is a constant or a marked null.
	Value = value.Value
	// Valuation maps nulls to constants.
	Valuation = value.Valuation
)

// Queries.
type (
	// Expr is a relational algebra expression.
	Expr = algebra.Expr
	// Cond is a selection condition.
	Cond = algebra.Cond
	// CertainOptions bounds the exact certain-answer oracle and selects
	// its worker count (CertainOptions.Workers: 0 = one per CPU, 1 =
	// serial).
	CertainOptions = certain.Options
	// EngineOptions configures the shared parallel-execution subsystem
	// (internal/engine) for the procedures that take an explicit pool:
	// Workers 0 means one per CPU, 1 forces the serial reference path.
	// Results never depend on the worker count.
	EngineOptions = engine.Options
	// Strategy selects a c-table evaluation strategy.
	Strategy = ctable.Strategy
	// Constraints is a set of integrity constraints (FDs/INDs).
	Constraints = constraint.Set
	// FD is a functional dependency; IND an inclusion dependency.
	FD = constraint.FD
	// IND is an inclusion dependency.
	IND = constraint.IND
	// Report compares all evaluation procedures on one query.
	Report = core.Report
)

// The four c-table strategies of Theorem 4.9.
const (
	Eager     = ctable.Eager
	SemiEager = ctable.SemiEager
	Lazy      = ctable.Lazy
	Aware     = ctable.Aware
)

// Value constructors.
var (
	// Const builds a constant value.
	Const = value.Const
	// Int builds a numeric constant value.
	Int = value.Int
	// Null builds the marked null ⊥id.
	Null = value.Null
	// T builds a tuple.
	T = value.T
	// Consts builds a tuple of constants.
	Consts = value.Consts
)

// Database constructors.
var (
	// NewDatabase creates an empty incomplete database.
	NewDatabase = relation.NewDatabase
	// NewRelation creates an empty relation with named attributes.
	NewRelation = relation.New
	// Codd renumbers every null occurrence freshly (SQL's non-repeating
	// nulls).
	Codd = relation.Codd
)

// Query constructors (relational algebra).
var (
	// R references a database relation; Sel, Proj, Join, Times, Un,
	// Minus, Inter, Div build σ, π, ⋈, ×, ∪, −, ∩, ÷.
	R     = algebra.R
	Sel   = algebra.Sel
	Proj  = algebra.Proj
	Join  = algebra.Join
	Times = algebra.Times
	Un    = algebra.Un
	Minus = algebra.Minus
	Inter = algebra.Inter
	Div   = algebra.Div

	// Condition builders: =, ≠, <, >, const/null tests, ∧, ∨, ¬, IN.
	CEq       = algebra.CEq
	CEqC      = algebra.CEqC
	CNeq      = algebra.CNeq
	CNeqC     = algebra.CNeqC
	CLess     = algebra.CLess
	CLessC    = algebra.CLessC
	CGreaterC = algebra.CGreaterC
	CNull     = algebra.CNull
	CConst    = algebra.CConst
	CAnd      = algebra.CAnd
	COr       = algebra.COr
	CNot      = algebra.CNot
	CIn       = algebra.CIn
)

// Evaluation procedures (see package core for details).
var (
	// SQL is three-valued SQL evaluation; Naive treats nulls as fresh
	// constants; the Bag variants follow SQL's multiset arithmetic.
	SQL      = core.SQL
	Naive    = core.Naive
	SQLBag   = core.SQLBag
	NaiveBag = core.NaiveBag

	// CertainWithNulls and CertainIntersection are the exact (guarded
	// exponential) certainty oracles.
	CertainWithNulls    = core.CertainWithNulls
	CertainIntersection = core.CertainIntersection

	// ApproxPlus/ApproxPossible evaluate the Figure 2(b) rewritings;
	// ApproxTrueFalse the Figure 2(a) ones.
	ApproxPlus      = core.ApproxPlus
	ApproxPossible  = core.ApproxPossible
	ApproxTrueFalse = core.ApproxTrueFalse

	// CTableAnswers evaluates via conditional tables under a strategy;
	// CTableAnswersWith takes an explicit worker pool.
	CTableAnswers     = core.CTableAnswers
	CTableAnswersWith = core.CTableAnswersWith

	// AlmostCertainlyTrue and Mu are the probabilistic answers of §4.3;
	// MuWith and MuK take an explicit worker pool.
	AlmostCertainlyTrue = core.AlmostCertainlyTrue
	Mu                  = core.Mu
	MuWith              = core.MuWith
	MuK                 = core.MuK

	// Analyze runs everything and classifies SQL's errors.
	Analyze = core.Analyze
)

// Query planning. Evaluation is planned by default: SQL/Naive and every
// oracle run through internal/plan's compile-once physical plans (selection
// pushdown, n-ary multi-key hash joins, plan reuse across valuations with
// frozen null-free subplans). These re-exports expose the planner directly.
var (
	// Explain renders the optimized logical expression and the compiled
	// physical plan for a query; a non-nil database marks the subplans that
	// would be frozen across its possible worlds.
	Explain = plan.Explain

	// Describe is the structured form of Explain (the JSON the incdbd
	// server's /v1/explain endpoint and incdbctl explain -format json
	// emit).
	Describe = plan.Describe

	// EvalMode evaluates a query in an explicit mode (ModeNaive/ModeSQL)
	// through the planner; Naive and SQL are the common shorthands.
	EvalMode = algebra.Eval

	// NewPrepCache creates a version-guarded prepared-plan cache for
	// long-lived workloads (REPL/server): pass it via
	// CertainOptions.Prep so repeated oracle calls against an unchanged
	// database reuse frozen subplan state across calls. Entries are
	// invalidated exactly when a relation the plan reads mutates
	// (Relation.Version moves).
	NewPrepCache = plan.NewPrepCache
)

// PrepCache re-exports the version-guarded prepared-plan cache type, and
// ExplainInfo the structured EXPLAIN rendering.
type (
	PrepCache   = plan.PrepCache
	ExplainInfo = plan.ExplainInfo
)

// Evaluation modes for EvalMode and Explain.
const (
	ModeNaive = algebra.ModeNaive
	ModeSQL   = algebra.ModeSQL
)

// Mode selects naive or SQL-style condition evaluation.
type Mode = algebra.Mode

// MuRat is a convenience alias for the exact rational probabilities.
type MuRat = big.Rat
